//! Per-device configuration: the protocols a router runs and its static
//! routes.

use crate::bgp::BgpConfig;
use crate::ospf::OspfConfig;
use crate::static_routes::StaticRoute;
use plankton_net::ip::Prefix;
use plankton_net::topology::NodeId;
use serde::{Deserialize, Serialize};

/// The full configuration of one device.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// OSPF process, if configured.
    pub ospf: Option<OspfConfig>,
    /// BGP process, if configured.
    pub bgp: Option<BgpConfig>,
    /// Static routes.
    pub static_routes: Vec<StaticRoute>,
}

impl DeviceConfig {
    /// A device with no routing configuration at all.
    pub fn empty() -> Self {
        DeviceConfig::default()
    }

    /// Attach an OSPF process, builder-style.
    pub fn with_ospf(mut self, ospf: OspfConfig) -> Self {
        self.ospf = Some(ospf);
        self
    }

    /// Attach a BGP process, builder-style.
    pub fn with_bgp(mut self, bgp: BgpConfig) -> Self {
        self.bgp = Some(bgp);
        self
    }

    /// Add a static route, builder-style.
    pub fn with_static_route(mut self, route: StaticRoute) -> Self {
        self.static_routes.push(route);
        self
    }

    /// Does this device run any routing protocol or have any static route?
    pub fn is_configured(&self) -> bool {
        self.ospf.is_some() || self.bgp.is_some() || !self.static_routes.is_empty()
    }

    /// Does the device run BGP?
    pub fn runs_bgp(&self) -> bool {
        self.bgp.is_some()
    }

    /// Does the device run OSPF?
    pub fn runs_ospf(&self) -> bool {
        self.ospf.is_some()
    }

    /// Every prefix this device's configuration mentions: originated
    /// networks, static route destinations and route-map matches. The PEC
    /// trie is seeded with these (§3.1).
    pub fn referenced_prefixes(&self) -> Vec<Prefix> {
        let mut out = Vec::new();
        if let Some(ospf) = &self.ospf {
            out.extend_from_slice(&ospf.networks);
        }
        if let Some(bgp) = &self.bgp {
            out.extend_from_slice(&bgp.networks);
            for n in &bgp.neighbors {
                out.extend(n.import.referenced_prefixes());
                out.extend(n.export.referenced_prefixes());
            }
        }
        for sr in &self.static_routes {
            out.push(sr.prefix);
        }
        out
    }

    /// The static routes whose prefix covers any part of `prefix`.
    pub fn static_routes_for(&self, prefix: &Prefix) -> Vec<&StaticRoute> {
        self.static_routes
            .iter()
            .filter(|sr| sr.prefix.overlaps(prefix))
            .collect()
    }

    /// All BGP peers this device has sessions with.
    pub fn bgp_peers(&self) -> Vec<NodeId> {
        self.bgp
            .as_ref()
            .map(|b| b.neighbors.iter().map(|n| n.peer).collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bgp::BgpNeighborConfig;
    use crate::static_routes::StaticRoute;

    #[test]
    fn empty_device() {
        let d = DeviceConfig::empty();
        assert!(!d.is_configured());
        assert!(d.referenced_prefixes().is_empty());
        assert!(d.bgp_peers().is_empty());
    }

    #[test]
    fn referenced_prefixes_cover_all_sources() {
        let d = DeviceConfig::empty()
            .with_ospf(OspfConfig::originating(vec!["10.0.0.0/24"
                .parse()
                .unwrap()]))
            .with_bgp(
                BgpConfig::new(65001, 1)
                    .with_network("20.0.0.0/16".parse().unwrap())
                    .with_neighbor(BgpNeighborConfig::ebgp(NodeId(5), 65002)),
            )
            .with_static_route(StaticRoute::null("30.0.0.0/8".parse().unwrap()));
        let ps = d.referenced_prefixes();
        assert_eq!(ps.len(), 3);
        assert!(d.is_configured());
        assert!(d.runs_bgp());
        assert!(d.runs_ospf());
        assert_eq!(d.bgp_peers(), vec![NodeId(5)]);
    }

    #[test]
    fn static_routes_for_overlapping_prefix() {
        let d = DeviceConfig::empty()
            .with_static_route(StaticRoute::null("10.0.0.0/8".parse().unwrap()))
            .with_static_route(StaticRoute::null("20.0.0.0/8".parse().unwrap()));
        assert_eq!(
            d.static_routes_for(&"10.1.0.0/16".parse().unwrap()).len(),
            1
        );
        assert_eq!(d.static_routes_for(&"0.0.0.0/0".parse().unwrap()).len(), 2);
        assert_eq!(d.static_routes_for(&"30.0.0.0/8".parse().unwrap()).len(), 0);
    }
}
