//! Ring-of-routers OSPF scenario (Figure 8 micro-benchmarks).

use crate::device::DeviceConfig;
use crate::network::Network;
use crate::ospf::OspfConfig;
use plankton_net::generators::ring::{ring, RingNetwork};
use plankton_net::ip::Prefix;
use plankton_net::topology::NodeId;

/// A ring of `n` OSPF routers where router 0 originates one destination
/// prefix; everyone else should reach it either way around the ring.
#[derive(Clone, Debug)]
pub struct RingOspfScenario {
    /// The configured network.
    pub network: Network,
    /// The underlying generated ring (routers in ring order, link list).
    pub ring: RingNetwork,
    /// The destination prefix originated by router 0.
    pub destination: Prefix,
    /// The originating router (router 0).
    pub origin: NodeId,
}

/// Build the ring scenario: OSPF with unit weights on every link, router 0
/// originating [`RingNetwork::destination_prefix`].
pub fn ring_ospf(n: usize) -> RingOspfScenario {
    let r = ring(n);
    let mut network = Network::unconfigured(r.topology.clone());
    for (i, &node) in r.routers.iter().enumerate() {
        let mut ospf = OspfConfig::enabled();
        // Unit weights make both directions around the ring comparable, so a
        // failure anywhere still leaves a route.
        for &(_, link) in r.topology.neighbors(node) {
            ospf = ospf.with_cost(link, 1);
        }
        if i == 0 {
            ospf = ospf.with_network(r.destination_prefix);
        }
        *network.device_mut(node) = DeviceConfig::empty().with_ospf(ospf);
    }
    RingOspfScenario {
        destination: r.destination_prefix,
        origin: r.routers[0],
        network,
        ring: r,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_scenario_is_valid() {
        let s = ring_ospf(8);
        assert!(s.network.validate().is_empty());
        assert_eq!(s.network.ospf_speakers().len(), 8);
        assert_eq!(s.network.origins_of(&s.destination), vec![s.origin]);
    }

    #[test]
    fn only_router_zero_originates() {
        let s = ring_ospf(4);
        let origins = s.network.origins_of(&s.destination);
        assert_eq!(origins.len(), 1);
    }
}
