//! ISP scenarios over the synthetic AS topologies: plain OSPF with link
//! weights (Figures 7(d), 7(g)) and iBGP over OSPF (Figure 7(e), Figure 8).

use crate::bgp::{BgpConfig, BgpNeighborConfig};
use crate::device::DeviceConfig;
use crate::network::Network;
use crate::ospf::OspfConfig;
use plankton_net::generators::as_topo::{as_topology, AsTopology, AsTopologySpec};
use plankton_net::ip::{Ipv4Addr, Prefix};
use plankton_net::topology::NodeId;

/// The OSPF-only ISP scenario.
#[derive(Clone, Debug)]
pub struct IspOspfScenario {
    /// The configured network.
    pub network: Network,
    /// The underlying AS topology (backbone/access split, link weights).
    pub as_topology: AsTopology,
    /// All customer prefixes originated by access routers.
    pub destinations: Vec<Prefix>,
    /// The ingress router used by the Figure 7(d) reachability check.
    pub ingress: NodeId,
}

/// Build the ISP OSPF scenario: every router runs OSPF with the generated
/// link weights, each access router originates its customer prefix, and every
/// router additionally originates its loopback /32 (needed later for iBGP).
pub fn isp_ospf(spec: &AsTopologySpec) -> IspOspfScenario {
    let ast = as_topology(spec);
    let topo = ast.topology.clone();
    let mut network = Network::unconfigured(topo.clone());

    for n in topo.node_ids() {
        let mut ospf = OspfConfig::enabled();
        for &(_, link) in topo.neighbors(n) {
            ospf = ospf.with_cost(link, ast.link_weights[link.index()]);
        }
        if let Some(lb) = topo.node(n).loopback {
            ospf = ospf.with_network(Prefix::host(lb));
        }
        *network.device_mut(n) = DeviceConfig::empty().with_ospf(ospf);
    }
    for (i, &ar) in ast.access.iter().enumerate() {
        network
            .device_mut(ar)
            .ospf
            .as_mut()
            .expect("access router runs OSPF")
            .networks
            .push(ast.access_prefixes[i]);
    }

    IspOspfScenario {
        destinations: ast.access_prefixes.clone(),
        ingress: ast.multi_homed_ingress(),
        network,
        as_topology: ast,
    }
}

/// The iBGP-over-OSPF ISP scenario of Figure 7(e).
#[derive(Clone, Debug)]
pub struct IspIbgpScenario {
    /// The configured network.
    pub network: Network,
    /// The underlying AS topology.
    pub as_topology: AsTopology,
    /// The externally learned prefixes announced into iBGP by the border
    /// routers. Reaching these requires resolving the iBGP next hop through
    /// OSPF — the cross-PEC dependency the experiment exercises.
    pub bgp_destinations: Vec<Prefix>,
    /// The border routers originating `bgp_destinations` (one prefix each).
    pub borders: Vec<NodeId>,
    /// The loopback host prefixes that the OSPF underlay must provide
    /// (one per iBGP speaker).
    pub loopback_prefixes: Vec<Prefix>,
}

/// Build the iBGP-over-OSPF scenario: OSPF carries every router's loopback,
/// the backbone routers form a full iBGP mesh peering between loopbacks, and
/// two border routers (backbone 0 and 1) each originate one external prefix
/// into BGP. Packets to those prefixes are delivered only if the iBGP next
/// hop is reachable via the OSPF underlay.
pub fn isp_ibgp_over_ospf(spec: &AsTopologySpec) -> IspIbgpScenario {
    let base = isp_ospf(spec);
    let ast = base.as_topology;
    let mut network = base.network;
    let topo = ast.topology.clone();

    // Keep transit between iBGP speakers on the backbone: access routers do
    // not speak BGP, so IGP paths between backbone routers must not traverse
    // them (the standard "BGP-free edge, not BGP-free core" design). Raising
    // the access-link costs ensures backbone-to-backbone shortest paths stay
    // on backbone links.
    for &ar in &ast.access {
        for &(peer, link) in topo.neighbors(ar) {
            if let Some(ospf) = network.device_mut(ar).ospf.as_mut() {
                ospf.interface_costs.insert(link, 1000);
            }
            if let Some(ospf) = network.device_mut(peer).ospf.as_mut() {
                ospf.interface_costs.insert(link, 1000);
            }
        }
    }

    let local_as = 65000u32;
    let mesh: Vec<NodeId> = ast.backbone.clone();
    let borders = vec![mesh[0], mesh[1 % mesh.len()]];
    let bgp_destinations: Vec<Prefix> = vec![
        Prefix::new(Ipv4Addr::new(8, 8, 0, 0), 16),
        Prefix::new(Ipv4Addr::new(9, 9, 0, 0), 16),
    ];

    for (idx, &n) in mesh.iter().enumerate() {
        let mut bgp = BgpConfig::new(local_as, idx as u32 + 1);
        for &peer in &mesh {
            if peer != n {
                bgp = bgp.with_neighbor(BgpNeighborConfig::ibgp(peer, local_as));
            }
        }
        if let Some(pos) = borders.iter().position(|&b| b == n) {
            bgp = bgp.with_network(bgp_destinations[pos.min(bgp_destinations.len() - 1)]);
        }
        network.device_mut(n).bgp = Some(bgp);
    }

    let loopback_prefixes = mesh
        .iter()
        .map(|&n| {
            Prefix::host(
                topo.node(n)
                    .loopback
                    .expect("backbone routers have loopbacks"),
            )
        })
        .collect();

    IspIbgpScenario {
        network,
        as_topology: ast,
        bgp_destinations,
        borders,
        loopback_prefixes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isp_ospf_valid() {
        let s = isp_ospf(&AsTopologySpec::paper_as(1755));
        assert!(s.network.validate().is_empty());
        assert_eq!(s.destinations.len(), s.as_topology.access.len());
        // Every router originates its loopback.
        for n in s.network.topology.node_ids() {
            let lb = s.network.topology.node(n).loopback.unwrap();
            assert!(s
                .network
                .device(n)
                .ospf
                .as_ref()
                .unwrap()
                .originates(&Prefix::host(lb)));
        }
    }

    #[test]
    fn isp_ospf_costs_match_generated_weights() {
        let s = isp_ospf(&AsTopologySpec::paper_as(3967));
        let n = s.as_topology.backbone[0];
        let (_, link) = s.network.topology.neighbors(n)[0];
        assert_eq!(
            s.network.device(n).ospf.as_ref().unwrap().cost(link),
            Some(s.as_topology.link_weights[link.index()])
        );
    }

    #[test]
    fn ibgp_scenario_valid_and_meshed() {
        let s = isp_ibgp_over_ospf(&AsTopologySpec::paper_as(1221));
        assert!(s.network.validate().is_empty());
        let mesh_size = s.as_topology.backbone.len();
        for &n in &s.as_topology.backbone {
            let bgp = s.network.device(n).bgp.as_ref().unwrap();
            assert_eq!(bgp.neighbors.len(), mesh_size - 1);
            assert!(bgp
                .neighbors
                .iter()
                .all(|x| x.kind == crate::bgp::BgpSessionKind::Ibgp));
        }
        assert_eq!(s.borders.len(), 2);
        assert_eq!(s.bgp_destinations.len(), 2);
        // Borders originate the external prefixes.
        for (i, &b) in s.borders.iter().enumerate() {
            if s.borders[0] != s.borders[1] || i == 0 {
                assert!(!s
                    .network
                    .device(b)
                    .bgp
                    .as_ref()
                    .unwrap()
                    .networks
                    .is_empty());
            }
        }
    }

    #[test]
    fn access_routers_do_not_run_bgp() {
        let s = isp_ibgp_over_ospf(&AsTopologySpec::paper_as(3967));
        for &ar in &s.as_topology.access {
            assert!(!s.network.device(ar).runs_bgp());
            assert!(s.network.device(ar).runs_ospf());
        }
    }
}
