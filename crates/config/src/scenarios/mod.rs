//! Ready-made configuration scenarios.
//!
//! Each function builds a complete [`Network`](crate::Network) (topology +
//! per-device configuration) for one of the workloads used in the paper's
//! evaluation, together with the metadata the corresponding experiment needs
//! (destination prefixes, waypoint sets, intended sources, etc.).
//!
//! | Scenario | Paper experiment |
//! |---|---|
//! | [`ring_ospf`] | Figure 8 (optimization micro-benchmarks) |
//! | [`fat_tree_ospf`] | Figures 7(a), 7(b), 7(f), 7(g), 8 |
//! | [`fat_tree_bgp_rfc7938`] | Figure 7(c), Figure 9 |
//! | [`isp_ospf`] | Figures 7(d), 7(g) |
//! | [`isp_ibgp_over_ospf`] | Figure 7(e), Figure 8 |
//! | [`enterprise_scenario`] | Figures 7(h), 7(i) |
//! | [`gadgets`] | §5 "basic correctness": DISAGREE, BGP wedgies |

pub mod enterprise;
pub mod fat_tree;
pub mod gadgets;
pub mod isp;
pub mod ring;

pub use enterprise::{enterprise_scenario, EnterpriseScenario};
pub use fat_tree::{
    fat_tree_bgp_rfc7938, fat_tree_ospf, CoreStaticRoutes, FatTreeBgpScenario, FatTreeOspfScenario,
};
pub use gadgets::{
    bgp_wedgie, disagree_gadget, static_route_mutual_recursion, static_route_self_loop,
    GadgetScenario, BACKUP_COMMUNITY,
};
pub use isp::{isp_ibgp_over_ospf, isp_ospf, IspIbgpScenario, IspOspfScenario};
pub use ring::{ring_ospf, RingOspfScenario};
