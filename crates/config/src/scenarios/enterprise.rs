//! Enterprise/campus scenarios standing in for the paper's real-world
//! configurations (Figures 7(h), 7(i)).
//!
//! The paper notes that "all except one of these networks use some form of
//! recursive routing, such as indirect static routes or iBGP". The scenario
//! built here mirrors that: OSPF as the IGP, access subnets originated into
//! OSPF, a *recursive* default route on every access router pointing at an
//! exit router's loopback address, and an iBGP session pair between the exit
//! routers carrying an external prefix.

use crate::bgp::{BgpConfig, BgpNeighborConfig};
use crate::device::DeviceConfig;
use crate::network::Network;
use crate::ospf::OspfConfig;
use crate::static_routes::StaticRoute;
use plankton_net::generators::enterprise::{enterprise_network, EnterpriseNetwork, EnterpriseSpec};
use plankton_net::ip::{Ipv4Addr, Prefix};
use plankton_net::topology::NodeId;

/// The configured enterprise scenario.
#[derive(Clone, Debug)]
pub struct EnterpriseScenario {
    /// The configured network.
    pub network: Network,
    /// The underlying generated campus topology.
    pub enterprise: EnterpriseNetwork,
    /// Internal destination prefixes (access subnets).
    pub internal_destinations: Vec<Prefix>,
    /// The external prefix reachable via the exit routers (through the
    /// recursive default route and iBGP).
    pub external_destination: Prefix,
    /// The exit routers.
    pub exits: Vec<NodeId>,
    /// The loopback host prefixes of the exit routers (targets of the
    /// recursive static routes).
    pub exit_loopbacks: Vec<Prefix>,
}

/// Build the enterprise scenario from a generator spec.
pub fn enterprise_scenario(spec: &EnterpriseSpec) -> EnterpriseScenario {
    let ent = enterprise_network(spec);
    let topo = ent.topology.clone();
    let mut network = Network::unconfigured(topo.clone());

    // OSPF everywhere with generated weights; every router originates its
    // loopback so recursive routes and iBGP sessions can resolve.
    for n in topo.node_ids() {
        let mut ospf = OspfConfig::enabled();
        for &(_, link) in topo.neighbors(n) {
            ospf = ospf.with_cost(link, ent.link_weights[link.index()]);
        }
        if let Some(lb) = topo.node(n).loopback {
            ospf = ospf.with_network(Prefix::host(lb));
        }
        *network.device_mut(n) = DeviceConfig::empty().with_ospf(ospf);
    }
    // Access subnets into OSPF.
    for (i, &a) in ent.access.iter().enumerate() {
        network
            .device_mut(a)
            .ospf
            .as_mut()
            .expect("access router runs OSPF")
            .networks
            .push(ent.access_prefixes[i]);
    }

    let external_destination = Prefix::new(Ipv4Addr::new(100, 64, 0, 0), 16);
    let exits = ent.exits.clone();
    let exit_loopbacks: Vec<Prefix> = exits
        .iter()
        .map(|&e| Prefix::host(topo.node(e).loopback.expect("exit routers have loopbacks")))
        .collect();

    // Recursive default route on access routers, alternating between exits.
    for (i, &a) in ent.access.iter().enumerate() {
        let exit = exits[i % exits.len()];
        let exit_lb = topo.node(exit).loopback.unwrap();
        network
            .device_mut(a)
            .static_routes
            .push(StaticRoute::to_ip(external_destination, exit_lb));
    }

    // iBGP between exit routers carrying the external prefix (only when
    // there is more than one exit; tiny networks just originate it).
    if exits.len() >= 2 {
        let local_as = 65100;
        for (i, &e) in exits.iter().enumerate() {
            let mut bgp = BgpConfig::new(local_as, i as u32 + 1);
            for &peer in &exits {
                if peer != e {
                    bgp = bgp.with_neighbor(BgpNeighborConfig::ibgp(peer, local_as));
                }
            }
            if i == 0 {
                bgp = bgp.with_network(external_destination);
            }
            network.device_mut(e).bgp = Some(bgp);
        }
    } else {
        network
            .device_mut(exits[0])
            .ospf
            .as_mut()
            .expect("exit runs OSPF")
            .networks
            .push(external_destination);
    }

    EnterpriseScenario {
        internal_destinations: ent.access_prefixes.clone(),
        external_destination,
        exits,
        exit_loopbacks,
        network,
        enterprise: ent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_set_builds_and_validates() {
        for spec in EnterpriseSpec::paper_set() {
            let s = enterprise_scenario(&spec);
            assert!(s.network.validate().is_empty(), "{}", spec.name);
            assert_eq!(s.internal_destinations.len(), s.enterprise.access.len());
        }
    }

    #[test]
    fn access_routers_have_recursive_default() {
        let s = enterprise_scenario(&EnterpriseSpec {
            name: "II".into(),
            routers: 63,
            seed: 7001,
        });
        for &a in &s.enterprise.access {
            let routes = &s.network.device(a).static_routes;
            assert_eq!(routes.len(), 1);
            assert!(routes[0].is_recursive());
            assert_eq!(routes[0].prefix, s.external_destination);
        }
    }

    #[test]
    fn exits_run_ibgp_when_paired() {
        let s = enterprise_scenario(&EnterpriseSpec {
            name: "III".into(),
            routers: 71,
            seed: 7002,
        });
        assert!(s.exits.len() >= 2);
        for &e in &s.exits {
            assert!(s.network.device(e).runs_bgp());
        }
    }

    #[test]
    fn tiny_network_originates_external_into_ospf() {
        let s = enterprise_scenario(&EnterpriseSpec {
            name: "VI".into(),
            routers: 2,
            seed: 7005,
        });
        assert_eq!(s.exits.len(), 1);
        assert!(s
            .network
            .device(s.exits[0])
            .ospf
            .as_ref()
            .unwrap()
            .originates(&s.external_destination));
    }
}
