//! Small hand-crafted gadget networks used for correctness testing (§5,
//! "simple hand-created topologies incorporating protocol characteristics
//! such as shortest path routing, non-deterministic protocol convergence,
//! redistribution, recursive routing"): the DISAGREE gadget from the stable
//! paths problem literature, a BGP wedgie, and recursive static-route
//! dependency gadgets.

use crate::bgp::{BgpConfig, BgpNeighborConfig};
use crate::network::Network;
use crate::route_map::{MatchCondition, RouteMap, RouteMapAction, RouteMapClause, SetAction};
use crate::static_routes::StaticRoute;
use plankton_net::ip::{Ipv4Addr, Prefix};
use plankton_net::topology::{NodeId, TopologyBuilder};

/// A gadget network with the handles tests need.
#[derive(Clone, Debug)]
pub struct GadgetScenario {
    /// A short human-readable name.
    pub name: &'static str,
    /// The configured network.
    pub network: Network,
    /// The destination prefix the gadget is about.
    pub destination: Prefix,
    /// The node originating `destination`.
    pub origin: NodeId,
    /// Other nodes of interest, in gadget-specific order.
    pub actors: Vec<NodeId>,
}

/// The DISAGREE gadget: origin `o` plus two nodes `a` and `b`, each of which
/// prefers the path through the other over its direct path to `o`. The
/// network has exactly two converged states — (`a` direct, `b` via `a`) and
/// (`b` direct, `a` via `b`) — and which one is reached depends on the
/// non-deterministic order of protocol events.
pub fn disagree_gadget() -> GadgetScenario {
    let mut tb = TopologyBuilder::new();
    let o = tb.add_router("origin");
    let a = tb.add_router("a");
    let b = tb.add_router("b");
    tb.set_loopback(o, Ipv4Addr::new(1, 0, 0, 1));
    tb.set_loopback(a, Ipv4Addr::new(1, 0, 0, 2));
    tb.set_loopback(b, Ipv4Addr::new(1, 0, 0, 3));
    tb.add_link(o, a);
    tb.add_link(o, b);
    tb.add_link(a, b);
    let topo = tb.build();

    let destination: Prefix = "50.0.0.0/16".parse().unwrap();
    let asn = |n: NodeId| 65000 + n.0;
    let prefer_peer = |peer: NodeId| RouteMap {
        clauses: vec![
            RouteMapClause {
                action: RouteMapAction::Permit,
                matches: vec![MatchCondition::Neighbor(peer)],
                sets: vec![SetAction::LocalPref(200)],
            },
            RouteMapClause::permit_any(),
        ],
    };

    let mut network = Network::unconfigured(topo);
    network.device_mut(o).bgp = Some(
        BgpConfig::new(asn(o), 1)
            .with_network(destination)
            .with_neighbor(BgpNeighborConfig::ebgp(a, asn(a)))
            .with_neighbor(BgpNeighborConfig::ebgp(b, asn(b))),
    );
    network.device_mut(a).bgp = Some(
        BgpConfig::new(asn(a), 2)
            .with_neighbor(BgpNeighborConfig::ebgp(o, asn(o)))
            .with_neighbor(BgpNeighborConfig::ebgp(b, asn(b)).with_import(prefer_peer(b))),
    );
    network.device_mut(b).bgp = Some(
        BgpConfig::new(asn(b), 3)
            .with_neighbor(BgpNeighborConfig::ebgp(o, asn(o)))
            .with_neighbor(BgpNeighborConfig::ebgp(a, asn(a)).with_import(prefer_peer(a))),
    );

    GadgetScenario {
        name: "disagree",
        network,
        destination,
        origin: o,
        actors: vec![a, b],
    }
}

/// Community used to tag the backup link in the wedgie gadget.
pub const BACKUP_COMMUNITY: u32 = 666;
/// Community used to tag customer-learned routes in the wedgie gadget.
const CUSTOMER_COMMUNITY: u32 = 100;

/// The classic BGP wedgie (RFC 4264): customer AS1 is dual-homed to a backup
/// provider AS2 and a primary provider AS4; AS2 buys transit from AS3, which
/// peers with AS4. The route advertised over the backup link carries
/// [`BACKUP_COMMUNITY`], which AS2 maps to a very low local preference.
///
/// * Intended converged state: all traffic to AS1 flows through the primary
///   link (AS2 reaches AS1 via AS3 → AS4).
/// * Wedged converged state: AS2 and AS3 forward through the backup link.
///
/// Which state the network reaches depends on message ordering, so only a
/// verifier that explores non-deterministic convergence (Plankton,
/// Minesweeper) can find the violation of "the backup link carries no
/// traffic unless the primary has failed".
pub fn bgp_wedgie() -> GadgetScenario {
    let mut tb = TopologyBuilder::new();
    let a1 = tb.add_router("as1"); // customer / origin
    let a2 = tb.add_router("as2"); // backup provider
    let a3 = tb.add_router("as3"); // AS2's transit provider
    let a4 = tb.add_router("as4"); // primary provider
    for (i, n) in [a1, a2, a3, a4].iter().enumerate() {
        tb.set_loopback(*n, Ipv4Addr::new(2, 0, 0, (i + 1) as u8));
    }
    tb.add_link(a1, a2); // backup link
    tb.add_link(a1, a4); // primary link
    tb.add_link(a2, a3);
    tb.add_link(a3, a4);
    let topo = tb.build();

    let destination: Prefix = "60.0.0.0/16".parse().unwrap();
    let asn = |n: NodeId| 65001 + n.0;

    // Import policy helpers. Routes learned from customers are tagged with
    // CUSTOMER_COMMUNITY and given the highest preference; peer routes keep
    // the default; provider routes get a low preference; backup-tagged routes
    // get the lowest.
    let import_customer = RouteMap {
        clauses: vec![RouteMapClause {
            action: RouteMapAction::Permit,
            matches: vec![],
            sets: vec![
                SetAction::LocalPref(200),
                SetAction::AddCommunity(CUSTOMER_COMMUNITY),
            ],
        }],
    };
    let import_customer_backup = RouteMap {
        clauses: vec![
            RouteMapClause {
                action: RouteMapAction::Permit,
                matches: vec![MatchCondition::Community(BACKUP_COMMUNITY)],
                sets: vec![
                    SetAction::LocalPref(10),
                    SetAction::AddCommunity(CUSTOMER_COMMUNITY),
                ],
            },
            RouteMapClause {
                action: RouteMapAction::Permit,
                matches: vec![],
                sets: vec![
                    SetAction::LocalPref(200),
                    SetAction::AddCommunity(CUSTOMER_COMMUNITY),
                ],
            },
        ],
    };
    let import_peer = RouteMap {
        clauses: vec![RouteMapClause {
            action: RouteMapAction::Permit,
            matches: vec![],
            sets: vec![
                SetAction::LocalPref(100),
                SetAction::RemoveCommunity(CUSTOMER_COMMUNITY),
            ],
        }],
    };
    let import_provider = RouteMap {
        clauses: vec![RouteMapClause {
            action: RouteMapAction::Permit,
            matches: vec![],
            sets: vec![
                SetAction::LocalPref(50),
                SetAction::RemoveCommunity(CUSTOMER_COMMUNITY),
            ],
        }],
    };
    // Export towards peers and providers: only customer-learned routes.
    let export_customers_only = RouteMap {
        clauses: vec![
            RouteMapClause {
                action: RouteMapAction::Permit,
                matches: vec![MatchCondition::Community(CUSTOMER_COMMUNITY)],
                sets: vec![],
            },
            RouteMapClause::deny_any(),
        ],
    };
    // AS1's export over the backup link tags the route.
    let export_backup_tag = RouteMap {
        clauses: vec![RouteMapClause {
            action: RouteMapAction::Permit,
            matches: vec![],
            sets: vec![SetAction::AddCommunity(BACKUP_COMMUNITY)],
        }],
    };

    let mut network = Network::unconfigured(topo);
    // AS1: originates the prefix; backup export tags it.
    network.device_mut(a1).bgp = Some(
        BgpConfig::new(asn(a1), 1)
            .with_network(destination)
            .with_neighbor(
                BgpNeighborConfig::ebgp(a2, asn(a2)).with_export(export_backup_tag.clone()),
            )
            .with_neighbor(BgpNeighborConfig::ebgp(a4, asn(a4))),
    );
    // AS2: customer AS1 (backup-aware import), provider AS3.
    network.device_mut(a2).bgp = Some(
        BgpConfig::new(asn(a2), 2)
            .with_neighbor(BgpNeighborConfig::ebgp(a1, asn(a1)).with_import(import_customer_backup))
            .with_neighbor(
                BgpNeighborConfig::ebgp(a3, asn(a3))
                    .with_import(import_provider.clone())
                    .with_export(export_customers_only.clone()),
            ),
    );
    // AS3: customer AS2, peer AS4.
    network.device_mut(a3).bgp = Some(
        BgpConfig::new(asn(a3), 3)
            .with_neighbor(
                BgpNeighborConfig::ebgp(a2, asn(a2)).with_import(import_customer.clone()),
            )
            .with_neighbor(
                BgpNeighborConfig::ebgp(a4, asn(a4))
                    .with_import(import_peer.clone())
                    .with_export(export_customers_only.clone()),
            ),
    );
    // AS4: customer AS1, peer AS3.
    network.device_mut(a4).bgp = Some(
        BgpConfig::new(asn(a4), 4)
            .with_neighbor(BgpNeighborConfig::ebgp(a1, asn(a1)).with_import(import_customer))
            .with_neighbor(
                BgpNeighborConfig::ebgp(a3, asn(a3))
                    .with_import(import_peer)
                    .with_export(export_customers_only),
            ),
    );

    GadgetScenario {
        name: "bgp-wedgie",
        network,
        destination,
        origin: a1,
        actors: vec![a2, a3, a4],
    }
}

/// A two-router gadget with *mutually recursive* static routes: `r0` reaches
/// prefix A via an address inside prefix B, and `r1` reaches prefix B via an
/// address inside prefix A. The PEC dependency graph has a strongly connected
/// component of size two — the contrived case mentioned in §3.2 of the paper.
pub fn static_route_mutual_recursion() -> GadgetScenario {
    let mut tb = TopologyBuilder::new();
    let r0 = tb.add_router("r0");
    let r1 = tb.add_router("r1");
    tb.set_loopback(r0, Ipv4Addr::new(3, 0, 0, 1));
    tb.set_loopback(r1, Ipv4Addr::new(3, 0, 0, 2));
    tb.add_link(r0, r1);
    let topo = tb.build();

    let prefix_a: Prefix = "70.0.0.0/24".parse().unwrap();
    let prefix_b: Prefix = "71.0.0.0/24".parse().unwrap();
    let addr_in_a = Ipv4Addr::new(70, 0, 0, 1);
    let addr_in_b = Ipv4Addr::new(71, 0, 0, 1);

    let mut network = Network::unconfigured(topo);
    network
        .device_mut(r0)
        .static_routes
        .push(StaticRoute::to_ip(prefix_a, addr_in_b));
    network
        .device_mut(r1)
        .static_routes
        .push(StaticRoute::to_ip(prefix_b, addr_in_a));

    GadgetScenario {
        name: "static-mutual-recursion",
        network,
        destination: prefix_a,
        origin: r0,
        actors: vec![r1],
    }
}

/// A one-router gadget whose static route's next hop lies *inside the prefix
/// being matched* — the self-loop in the PEC dependency graph that the paper
/// observed in real-world configurations (§5).
pub fn static_route_self_loop() -> GadgetScenario {
    let mut tb = TopologyBuilder::new();
    let r0 = tb.add_router("r0");
    let r1 = tb.add_router("r1");
    tb.set_loopback(r0, Ipv4Addr::new(4, 0, 0, 1));
    tb.set_loopback(r1, Ipv4Addr::new(80, 0, 0, 1));
    tb.add_link(r0, r1);
    let topo = tb.build();

    let prefix: Prefix = "80.0.0.0/24".parse().unwrap();
    let next_hop_inside = Ipv4Addr::new(80, 0, 0, 1);

    let mut network = Network::unconfigured(topo);
    network
        .device_mut(r0)
        .static_routes
        .push(StaticRoute::to_ip(prefix, next_hop_inside));

    GadgetScenario {
        name: "static-self-loop",
        network,
        destination: prefix,
        origin: r1,
        actors: vec![r0],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disagree_gadget_shape() {
        let g = disagree_gadget();
        assert!(g.network.validate().is_empty());
        assert_eq!(g.network.bgp_speakers().len(), 3);
        assert_eq!(g.network.origins_of(&g.destination), vec![g.origin]);
        // Both actors prefer each other: their import maps from each other
        // set local pref 200.
        for (i, &actor) in g.actors.iter().enumerate() {
            let other = g.actors[1 - i];
            let bgp = g.network.device(actor).bgp.as_ref().unwrap();
            let nbr = bgp.neighbor(other).unwrap();
            assert!(!nbr.import.is_permit_all());
        }
    }

    #[test]
    fn wedgie_gadget_shape() {
        let g = bgp_wedgie();
        assert!(g.network.validate().is_empty());
        assert_eq!(g.network.bgp_speakers().len(), 4);
        // The export over the backup link tags the backup community.
        let a1 = g.origin;
        let a2 = g.actors[0];
        let bgp1 = g.network.device(a1).bgp.as_ref().unwrap();
        let export = &bgp1.neighbor(a2).unwrap().export;
        let attrs = crate::route_map::RouteAttrs::originated(g.destination);
        let out = export.apply(&attrs, a2).unwrap();
        assert!(out.has_community(BACKUP_COMMUNITY));
    }

    #[test]
    fn mutual_recursion_routes_are_recursive() {
        let g = static_route_mutual_recursion();
        assert!(g.network.validate().is_empty());
        assert!(g.network.device(NodeId(0)).static_routes[0].is_recursive());
        assert!(g.network.device(NodeId(1)).static_routes[0].is_recursive());
    }

    #[test]
    fn self_loop_next_hop_inside_prefix() {
        let g = static_route_self_loop();
        let sr = &g.network.device(NodeId(0)).static_routes[0];
        match sr.next_hop {
            crate::static_routes::StaticNextHop::Ip(ip) => assert!(sr.prefix.contains(ip)),
            _ => panic!("expected recursive next hop"),
        }
    }
}
