//! Fat-tree data-center scenarios: OSPF with static routes at the core
//! (Figures 7(a), 7(b)) and eBGP per RFC 7938 with a waypoint
//! misconfiguration (Figure 7(c)).

use crate::bgp::{BgpConfig, BgpNeighborConfig};
use crate::device::DeviceConfig;
use crate::network::Network;
use crate::ospf::OspfConfig;
use crate::static_routes::StaticRoute;
use plankton_net::generators::fat_tree::{fat_tree, FatTree};
use plankton_net::ip::Prefix;
use plankton_net::topology::NodeId;
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, Rng, SeedableRng};

/// What static routes to install at the core switches of the OSPF fat tree.
///
/// The paper's Figure 7(a)/(b) experiments install static routes at the core
/// that either *match* the routes OSPF would compute (loop check passes) or
/// deliberately send some traffic the wrong way so that it falls into a
/// routing loop (loop check fails).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoreStaticRoutes {
    /// No static routes: plain OSPF.
    None,
    /// Static routes at every core switch that agree with OSPF (pass case).
    MatchingOspf,
    /// Static routes at every core switch for a subset of prefixes that point
    /// into the *wrong* pod, creating forwarding loops (fail case).
    Looping,
}

/// The OSPF fat-tree scenario.
#[derive(Clone, Debug)]
pub struct FatTreeOspfScenario {
    /// The configured network.
    pub network: Network,
    /// The underlying fat tree (roles of every switch).
    pub fat_tree: FatTree,
    /// The rack prefixes originated by the edge switches.
    pub destinations: Vec<Prefix>,
    /// Which static-route mode was used.
    pub static_mode: CoreStaticRoutes,
}

/// Build the OSPF fat tree of arity `k`. Every switch runs OSPF with
/// identical link weights; each edge switch originates its rack prefix; the
/// core switches optionally carry static routes per `static_mode`.
pub fn fat_tree_ospf(k: usize, static_mode: CoreStaticRoutes) -> FatTreeOspfScenario {
    let ft = fat_tree(k);
    let topo = ft.topology.clone();
    let mut network = Network::unconfigured(topo.clone());
    let half = k / 2;

    // OSPF everywhere with identical weights.
    for n in topo.node_ids() {
        *network.device_mut(n) = DeviceConfig::empty().with_ospf(OspfConfig::enabled());
    }
    // Edge switches originate their rack prefix.
    let edges = ft.edges_flat();
    for (i, &e) in edges.iter().enumerate() {
        let ospf = network.device_mut(e).ospf.as_mut().expect("edge runs OSPF");
        ospf.networks.push(ft.edge_prefixes[i]);
    }

    // Static routes at the core. Core switch `c` sits in "column" group
    // g = c_index / (k/2)... in our generator, aggregation switch i of every
    // pod connects to cores [i*half, (i+1)*half), so core index `ci` is
    // reachable from aggregation index `ci / half` of each pod.
    match static_mode {
        CoreStaticRoutes::None => {}
        CoreStaticRoutes::MatchingOspf | CoreStaticRoutes::Looping => {
            for (ci, &core) in ft.core.iter().enumerate() {
                let agg_index = ci / half;
                for (ei, &prefix) in ft.edge_prefixes.iter().enumerate() {
                    let dest_pod = ei / half;
                    // The aggregation switch in the destination pod that this
                    // core connects to: OSPF would forward there.
                    let correct_agg = ft.aggregation[dest_pod][agg_index];
                    let via: NodeId = match static_mode {
                        CoreStaticRoutes::MatchingOspf => correct_agg,
                        CoreStaticRoutes::Looping => {
                            // Send a subset of prefixes into the wrong pod:
                            // traffic bounces between that pod's aggregation
                            // switch (which routes back up via OSPF) and the
                            // core layer.
                            if ei % 2 == 0 {
                                let wrong_pod = (dest_pod + 1) % k;
                                ft.aggregation[wrong_pod][agg_index]
                            } else {
                                correct_agg
                            }
                        }
                        CoreStaticRoutes::None => unreachable!(),
                    };
                    network
                        .device_mut(core)
                        .static_routes
                        .push(StaticRoute::to_interface(prefix, via));
                }
            }
        }
    }

    FatTreeOspfScenario {
        destinations: ft.edge_prefixes.clone(),
        network,
        fat_tree: ft,
        static_mode,
    }
}

/// The RFC 7938 BGP fat-tree scenario of Figure 7(c).
#[derive(Clone, Debug)]
pub struct FatTreeBgpScenario {
    /// The configured network.
    pub network: Network,
    /// The underlying fat tree.
    pub fat_tree: FatTree,
    /// The rack prefixes originated by the edge switches.
    pub destinations: Vec<Prefix>,
    /// The aggregation switches chosen as acceptable waypoints.
    pub waypoints: Vec<NodeId>,
    /// The source / destination edge switches whose traffic the waypoint
    /// policy constrains.
    pub monitored_edges: (NodeId, NodeId),
}

/// Build the BGP data center of Figure 7(c): every switch is its own AS with
/// eBGP sessions on every link (RFC 7938), each edge switch originates its
/// rack prefix, and a random subset of aggregation switches are designated
/// waypoints. The "misconfiguration" is that nothing steers routes through
/// the waypoints, so whether the selected path crosses one depends on
/// age-based tie-breaking — i.e. on non-deterministic protocol convergence.
pub fn fat_tree_bgp_rfc7938(k: usize, seed: u64) -> FatTreeBgpScenario {
    let ft = fat_tree(k);
    let topo = ft.topology.clone();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut network = Network::unconfigured(topo.clone());

    // Private AS numbers per RFC 7938: one per switch.
    let asn_of = |n: NodeId| 64512 + n.0;

    for n in topo.node_ids() {
        let mut bgp = BgpConfig::new(asn_of(n), n.0 + 1);
        for &(peer, _) in topo.neighbors(n) {
            bgp = bgp.with_neighbor(BgpNeighborConfig::ebgp(peer, asn_of(peer)));
        }
        *network.device_mut(n) = DeviceConfig::empty().with_bgp(bgp);
    }
    let edges = ft.edges_flat();
    for (i, &e) in edges.iter().enumerate() {
        network
            .device_mut(e)
            .bgp
            .as_mut()
            .expect("edge runs BGP")
            .networks
            .push(ft.edge_prefixes[i]);
    }

    // Waypoints: a random non-empty subset of the aggregation switches.
    let aggs = ft.aggregations_flat();
    let count = rng.gen_range(1..=aggs.len().max(1).min(1 + aggs.len() / 2));
    let mut waypoints: Vec<NodeId> = aggs.choose_multiple(&mut rng, count).copied().collect();
    waypoints.sort();

    // Monitor traffic between two edge switches in different pods.
    let src = ft.edge[0][0];
    let dst = ft.edge[k - 1][0];

    FatTreeBgpScenario {
        destinations: ft.edge_prefixes.clone(),
        waypoints,
        monitored_edges: (src, dst),
        network,
        fat_tree: ft,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ospf_fat_tree_valid() {
        for mode in [
            CoreStaticRoutes::None,
            CoreStaticRoutes::MatchingOspf,
            CoreStaticRoutes::Looping,
        ] {
            let s = fat_tree_ospf(4, mode);
            assert!(s.network.validate().is_empty(), "{mode:?}");
            assert_eq!(s.destinations.len(), 8);
            assert_eq!(s.network.ospf_speakers().len(), 20);
        }
    }

    #[test]
    fn static_routes_only_at_core() {
        let s = fat_tree_ospf(4, CoreStaticRoutes::MatchingOspf);
        for &core in &s.fat_tree.core {
            assert_eq!(
                s.network.device(core).static_routes.len(),
                s.destinations.len()
            );
        }
        for &e in &s.fat_tree.edges_flat() {
            assert!(s.network.device(e).static_routes.is_empty());
        }
    }

    #[test]
    fn looping_mode_diverges_from_matching() {
        let looping = fat_tree_ospf(4, CoreStaticRoutes::Looping);
        let matching = fat_tree_ospf(4, CoreStaticRoutes::MatchingOspf);
        let c0 = looping.fat_tree.core[0];
        assert_ne!(
            looping.network.device(c0).static_routes,
            matching.network.device(c0).static_routes
        );
    }

    #[test]
    fn bgp_fat_tree_valid_and_deterministic() {
        let a = fat_tree_bgp_rfc7938(4, 42);
        let b = fat_tree_bgp_rfc7938(4, 42);
        assert!(a.network.validate().is_empty());
        assert_eq!(a.waypoints, b.waypoints);
        assert!(!a.waypoints.is_empty());
        assert_eq!(a.network.bgp_speakers().len(), 20);
        // Distinct private ASN per switch.
        let asns: std::collections::HashSet<u32> = a
            .network
            .bgp_speakers()
            .iter()
            .map(|&n| a.network.device(n).bgp.as_ref().unwrap().asn)
            .collect();
        assert_eq!(asns.len(), 20);
    }

    #[test]
    fn bgp_fat_tree_monitored_edges_in_different_pods() {
        let s = fat_tree_bgp_rfc7938(4, 7);
        let (src, dst) = s.monitored_edges;
        assert_ne!(s.fat_tree.pod_of(src), s.fat_tree.pod_of(dst));
    }

    #[test]
    fn waypoints_are_aggregation_switches() {
        let s = fat_tree_bgp_rfc7938(6, 3);
        let aggs = s.fat_tree.aggregations_flat();
        assert!(s.waypoints.iter().all(|w| aggs.contains(w)));
    }
}
