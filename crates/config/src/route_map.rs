//! Route maps: the import/export policy language.
//!
//! Plankton's abstract protocol model (extended SPVP, §3.4.1 of the paper)
//! replaces vendor configuration with abstract import/export filters and
//! ranking functions "inferred from real-world configurations". A
//! [`RouteMap`] is that inference target: an ordered list of permit/deny
//! clauses, each with match conditions and attribute-set actions, evaluated
//! first-match-wins with an implicit deny at the end (an *empty* route map
//! permits everything unchanged, which is the common "no policy configured"
//! case).

use plankton_net::ip::Prefix;
use plankton_net::topology::NodeId;
use serde::{Deserialize, Serialize};

/// The attributes of a route that import/export policy can match on and
/// rewrite. Protocol models embed this in their route representation.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RouteAttrs {
    /// The destination prefix being advertised.
    pub prefix: Prefix,
    /// AS-path, most recent AS first.
    pub as_path: Vec<u32>,
    /// BGP communities attached to the route.
    pub communities: Vec<u32>,
    /// LOCAL_PREF (only meaningful inside an AS). Default 100.
    pub local_pref: u32,
    /// Multi-exit discriminator. Default 0.
    pub med: u32,
}

impl RouteAttrs {
    /// A freshly originated route for `prefix` with default attributes.
    pub fn originated(prefix: Prefix) -> Self {
        RouteAttrs {
            prefix,
            as_path: Vec::new(),
            communities: Vec::new(),
            local_pref: 100,
            med: 0,
        }
    }

    /// Length of the AS path.
    pub fn as_path_len(&self) -> usize {
        self.as_path.len()
    }

    /// Does the route carry community `c`?
    pub fn has_community(&self, c: u32) -> bool {
        self.communities.contains(&c)
    }
}

/// Permit or deny.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RouteMapAction {
    /// Accept the route (after applying the clause's set actions).
    Permit,
    /// Reject the route.
    Deny,
}

/// A single match condition inside a route-map clause. A clause matches a
/// route only if *all* of its conditions match.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MatchCondition {
    /// The route's prefix is exactly this prefix.
    PrefixExact(Prefix),
    /// The route's prefix is covered by any prefix in the list
    /// (a prefix-list with implicit `le 32`).
    PrefixIn(Vec<Prefix>),
    /// The route's prefix length is in `[min, max]`.
    PrefixLength {
        /// Minimum length, inclusive.
        min: u8,
        /// Maximum length, inclusive.
        max: u8,
    },
    /// The route carries this community.
    Community(u32),
    /// The AS path contains this AS number.
    AsPathContains(u32),
    /// The AS path is at most this long.
    AsPathLengthAtMost(u32),
    /// The advertisement came from / is going to this neighbor. Evaluated
    /// against the peer the route map is applied with.
    Neighbor(NodeId),
}

impl MatchCondition {
    /// Does the condition hold for `route` when exchanged with `peer`?
    pub fn matches(&self, route: &RouteAttrs, peer: NodeId) -> bool {
        match self {
            MatchCondition::PrefixExact(p) => route.prefix == *p,
            MatchCondition::PrefixIn(list) => list.iter().any(|p| p.covers(&route.prefix)),
            MatchCondition::PrefixLength { min, max } => {
                route.prefix.len() >= *min && route.prefix.len() <= *max
            }
            MatchCondition::Community(c) => route.has_community(*c),
            MatchCondition::AsPathContains(asn) => route.as_path.contains(asn),
            MatchCondition::AsPathLengthAtMost(n) => route.as_path.len() as u32 <= *n,
            MatchCondition::Neighbor(n) => peer == *n,
        }
    }
}

/// An attribute rewrite applied by a permitting clause.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SetAction {
    /// Set LOCAL_PREF.
    LocalPref(u32),
    /// Set MED.
    Med(u32),
    /// Attach a community.
    AddCommunity(u32),
    /// Strip a community.
    RemoveCommunity(u32),
    /// Prepend `count` copies of `asn` to the AS path.
    PrependAsPath {
        /// The AS number to prepend.
        asn: u32,
        /// How many copies.
        count: u8,
    },
}

impl SetAction {
    /// Apply the rewrite to `route` in place.
    pub fn apply(&self, route: &mut RouteAttrs) {
        match self {
            SetAction::LocalPref(v) => route.local_pref = *v,
            SetAction::Med(v) => route.med = *v,
            SetAction::AddCommunity(c) => {
                if !route.communities.contains(c) {
                    route.communities.push(*c);
                    route.communities.sort_unstable();
                }
            }
            SetAction::RemoveCommunity(c) => route.communities.retain(|x| x != c),
            SetAction::PrependAsPath { asn, count } => {
                for _ in 0..*count {
                    route.as_path.insert(0, *asn);
                }
            }
        }
    }
}

/// One clause of a route map.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RouteMapClause {
    /// Permit or deny when the clause matches.
    pub action: RouteMapAction,
    /// All conditions must hold for the clause to match. An empty list
    /// matches every route.
    pub matches: Vec<MatchCondition>,
    /// Rewrites applied when the clause permits.
    pub sets: Vec<SetAction>,
}

impl RouteMapClause {
    /// A clause that permits everything unchanged.
    pub fn permit_any() -> Self {
        RouteMapClause {
            action: RouteMapAction::Permit,
            matches: Vec::new(),
            sets: Vec::new(),
        }
    }

    /// A clause that denies everything (useful as an explicit terminator).
    pub fn deny_any() -> Self {
        RouteMapClause {
            action: RouteMapAction::Deny,
            matches: Vec::new(),
            sets: Vec::new(),
        }
    }

    fn matches_route(&self, route: &RouteAttrs, peer: NodeId) -> bool {
        self.matches.iter().all(|m| m.matches(route, peer))
    }
}

/// An ordered route map. Evaluation: the first clause whose conditions all
/// match decides; permit applies the clause's sets, deny drops the route.
/// If no clause matches the route is dropped, *except* that a route map with
/// no clauses at all permits everything (the "unconfigured" map).
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct RouteMap {
    /// The clauses, in evaluation order.
    pub clauses: Vec<RouteMapClause>,
}

impl RouteMap {
    /// The unconfigured map: permits everything unchanged.
    pub fn permit_all() -> Self {
        RouteMap {
            clauses: Vec::new(),
        }
    }

    /// A map that denies everything.
    pub fn deny_all() -> Self {
        RouteMap {
            clauses: vec![RouteMapClause::deny_any()],
        }
    }

    /// A map with a single permitting clause carrying `sets` for routes
    /// matching all of `matches`, followed by a permit-everything clause.
    pub fn permit_with(matches: Vec<MatchCondition>, sets: Vec<SetAction>) -> Self {
        RouteMap {
            clauses: vec![
                RouteMapClause {
                    action: RouteMapAction::Permit,
                    matches,
                    sets,
                },
                RouteMapClause::permit_any(),
            ],
        }
    }

    /// Does this map behave exactly like [`RouteMap::permit_all`]?
    pub fn is_permit_all(&self) -> bool {
        self.clauses.is_empty()
            || (self.clauses.len() == 1 && self.clauses[0] == RouteMapClause::permit_any())
    }

    /// Add a clause at the end, builder-style.
    pub fn with_clause(mut self, clause: RouteMapClause) -> Self {
        self.clauses.push(clause);
        self
    }

    /// Evaluate the map on `route` exchanged with `peer`. Returns the
    /// (possibly rewritten) route if permitted, `None` if denied.
    pub fn apply(&self, route: &RouteAttrs, peer: NodeId) -> Option<RouteAttrs> {
        if self.clauses.is_empty() {
            return Some(route.clone());
        }
        for clause in &self.clauses {
            if clause.matches_route(route, peer) {
                return match clause.action {
                    RouteMapAction::Permit => {
                        let mut out = route.clone();
                        for set in &clause.sets {
                            set.apply(&mut out);
                        }
                        Some(out)
                    }
                    RouteMapAction::Deny => None,
                };
            }
        }
        None
    }

    /// All prefixes the map matches on explicitly. The PEC computation seeds
    /// its trie with these (§3.1: "any prefixes appearing in route maps").
    pub fn referenced_prefixes(&self) -> Vec<Prefix> {
        let mut out = Vec::new();
        for clause in &self.clauses {
            for m in &clause.matches {
                match m {
                    MatchCondition::PrefixExact(p) => out.push(*p),
                    MatchCondition::PrefixIn(list) => out.extend_from_slice(list),
                    _ => {}
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn route(prefix: &str) -> RouteAttrs {
        RouteAttrs::originated(prefix.parse().unwrap())
    }

    const PEER: NodeId = NodeId(7);

    #[test]
    fn empty_map_permits_everything() {
        let m = RouteMap::permit_all();
        let r = route("10.0.0.0/24");
        assert_eq!(m.apply(&r, PEER), Some(r.clone()));
        assert!(m.is_permit_all());
    }

    #[test]
    fn deny_all_rejects() {
        let m = RouteMap::deny_all();
        assert_eq!(m.apply(&route("10.0.0.0/24"), PEER), None);
        assert!(!m.is_permit_all());
    }

    #[test]
    fn first_match_wins() {
        let m = RouteMap {
            clauses: vec![
                RouteMapClause {
                    action: RouteMapAction::Deny,
                    matches: vec![MatchCondition::PrefixExact("10.0.0.0/24".parse().unwrap())],
                    sets: vec![],
                },
                RouteMapClause::permit_any(),
            ],
        };
        assert_eq!(m.apply(&route("10.0.0.0/24"), PEER), None);
        assert!(m.apply(&route("10.0.1.0/24"), PEER).is_some());
    }

    #[test]
    fn implicit_deny_when_nothing_matches() {
        let m = RouteMap {
            clauses: vec![RouteMapClause {
                action: RouteMapAction::Permit,
                matches: vec![MatchCondition::Community(65001)],
                sets: vec![],
            }],
        };
        assert_eq!(m.apply(&route("10.0.0.0/24"), PEER), None);
    }

    #[test]
    fn set_local_pref_and_community() {
        let m = RouteMap::permit_with(
            vec![MatchCondition::PrefixIn(vec!["10.0.0.0/8"
                .parse()
                .unwrap()])],
            vec![SetAction::LocalPref(200), SetAction::AddCommunity(65010)],
        );
        let out = m.apply(&route("10.1.0.0/16"), PEER).unwrap();
        assert_eq!(out.local_pref, 200);
        assert!(out.has_community(65010));
        // Non-matching routes fall through to the trailing permit-any.
        let out2 = m.apply(&route("192.168.0.0/24"), PEER).unwrap();
        assert_eq!(out2.local_pref, 100);
    }

    #[test]
    fn prefix_length_and_as_path_matches() {
        let mut r = route("10.0.0.0/30");
        r.as_path = vec![65001, 65002];
        assert!(MatchCondition::PrefixLength { min: 24, max: 32 }.matches(&r, PEER));
        assert!(!MatchCondition::PrefixLength { min: 0, max: 16 }.matches(&r, PEER));
        assert!(MatchCondition::AsPathContains(65002).matches(&r, PEER));
        assert!(!MatchCondition::AsPathContains(65003).matches(&r, PEER));
        assert!(MatchCondition::AsPathLengthAtMost(2).matches(&r, PEER));
        assert!(!MatchCondition::AsPathLengthAtMost(1).matches(&r, PEER));
        assert!(MatchCondition::Neighbor(PEER).matches(&r, PEER));
        assert!(!MatchCondition::Neighbor(NodeId(8)).matches(&r, PEER));
    }

    #[test]
    fn prepend_and_community_removal() {
        let mut r = route("10.0.0.0/24");
        r.communities = vec![1, 2];
        SetAction::PrependAsPath {
            asn: 65000,
            count: 2,
        }
        .apply(&mut r);
        assert_eq!(r.as_path, vec![65000, 65000]);
        SetAction::RemoveCommunity(1).apply(&mut r);
        assert_eq!(r.communities, vec![2]);
        SetAction::AddCommunity(2).apply(&mut r);
        assert_eq!(r.communities, vec![2]);
        SetAction::Med(50).apply(&mut r);
        assert_eq!(r.med, 50);
    }

    #[test]
    fn referenced_prefixes_collected() {
        let m = RouteMap::permit_with(
            vec![
                MatchCondition::PrefixExact("10.0.0.0/24".parse().unwrap()),
                MatchCondition::PrefixIn(vec!["20.0.0.0/8".parse().unwrap()]),
            ],
            vec![],
        );
        let ps = m.referenced_prefixes();
        assert_eq!(ps.len(), 2);
    }

    #[test]
    fn multiple_conditions_are_conjunctive() {
        let clause = RouteMapClause {
            action: RouteMapAction::Permit,
            matches: vec![
                MatchCondition::PrefixLength { min: 24, max: 24 },
                MatchCondition::Community(9),
            ],
            sets: vec![],
        };
        let m = RouteMap {
            clauses: vec![clause],
        };
        let mut r = route("10.0.0.0/24");
        assert_eq!(m.apply(&r, PEER), None);
        r.communities.push(9);
        assert!(m.apply(&r, PEER).is_some());
    }
}
