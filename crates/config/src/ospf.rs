//! OSPF configuration for a single device.

use plankton_net::ip::Prefix;
use plankton_net::topology::LinkId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Default OSPF interface cost used when a link has no explicit cost.
pub const DEFAULT_OSPF_COST: u32 = 10;

/// OSPF configuration of one router.
///
/// Plankton models OSPF as shortest-path routing over configured link
/// weights, with every prefix listed in `networks` originated into the
/// protocol by this router (the paper's fat-tree experiments have "each edge
/// switch originating a prefix into OSPF").
#[derive(Clone, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct OspfConfig {
    /// Per-link interface cost *from this router*. Costs may be asymmetric
    /// between the two ends of a link. Links not listed use
    /// [`DEFAULT_OSPF_COST`].
    pub interface_costs: BTreeMap<LinkId, u32>,
    /// Links on which OSPF is explicitly disabled (passive or not covered by
    /// a `network` statement). Adjacency never forms over these.
    pub disabled_links: Vec<LinkId>,
    /// Prefixes this router originates into OSPF.
    pub networks: Vec<Prefix>,
}

impl OspfConfig {
    /// OSPF enabled on all interfaces with default costs and no origination.
    pub fn enabled() -> Self {
        OspfConfig::default()
    }

    /// OSPF with the given originated prefixes.
    pub fn originating(networks: Vec<Prefix>) -> Self {
        OspfConfig {
            networks,
            ..Default::default()
        }
    }

    /// Set the cost of a link, builder-style.
    pub fn with_cost(mut self, link: LinkId, cost: u32) -> Self {
        self.interface_costs.insert(link, cost);
        self
    }

    /// Disable OSPF on a link, builder-style.
    pub fn with_disabled_link(mut self, link: LinkId) -> Self {
        self.disabled_links.push(link);
        self
    }

    /// Add an originated prefix, builder-style.
    pub fn with_network(mut self, prefix: Prefix) -> Self {
        self.networks.push(prefix);
        self
    }

    /// The cost of sending over `link` from this router, or `None` if OSPF is
    /// disabled on the link.
    pub fn cost(&self, link: LinkId) -> Option<u32> {
        if self.disabled_links.contains(&link) {
            return None;
        }
        Some(
            self.interface_costs
                .get(&link)
                .copied()
                .unwrap_or(DEFAULT_OSPF_COST),
        )
    }

    /// Does this router originate `prefix`?
    pub fn originates(&self, prefix: &Prefix) -> bool {
        self.networks.contains(prefix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cost_applies() {
        let c = OspfConfig::enabled();
        assert_eq!(c.cost(LinkId(0)), Some(DEFAULT_OSPF_COST));
    }

    #[test]
    fn explicit_cost_overrides_default() {
        let c = OspfConfig::enabled().with_cost(LinkId(3), 55);
        assert_eq!(c.cost(LinkId(3)), Some(55));
        assert_eq!(c.cost(LinkId(4)), Some(DEFAULT_OSPF_COST));
    }

    #[test]
    fn disabled_links_have_no_cost() {
        let c = OspfConfig::enabled().with_disabled_link(LinkId(1));
        assert_eq!(c.cost(LinkId(1)), None);
        assert!(c.cost(LinkId(0)).is_some());
    }

    #[test]
    fn origination() {
        let p: Prefix = "10.0.0.0/24".parse().unwrap();
        let c = OspfConfig::originating(vec![p]).with_network("10.0.1.0/24".parse().unwrap());
        assert!(c.originates(&p));
        assert!(c.originates(&"10.0.1.0/24".parse().unwrap()));
        assert!(!c.originates(&"10.0.2.0/24".parse().unwrap()));
        assert_eq!(c.networks.len(), 2);
    }
}
