//! The network-wide configuration object: a topology plus the configuration
//! of every device on it. This is the input to the Plankton verifier.

use crate::device::DeviceConfig;
use plankton_net::ip::Prefix;
use plankton_net::topology::{LinkId, NodeId, Topology};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A complete network: topology + per-device configuration.
///
/// Serializable with serde, so a `Network` doubles as Plankton's on-disk
/// configuration format (JSON via `serde_json`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Network {
    /// The physical topology.
    pub topology: Topology,
    /// Per-device configuration, indexed by [`NodeId`].
    pub devices: Vec<DeviceConfig>,
    /// Links that are administratively down (a link-down delta in the
    /// incremental service, or a drained node's incident links). Downed
    /// links keep their [`LinkId`] — the verifier treats them as failed in
    /// every explored failure scenario, so protocol adjacency never forms
    /// over them. Absent in older documents (defaults to empty).
    #[serde(default)]
    pub down_links: Vec<LinkId>,
}

/// A problem found by [`Network::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// The device vector length does not match the topology.
    DeviceCountMismatch {
        /// Devices in the topology.
        nodes: usize,
        /// Entries in the configuration.
        configs: usize,
    },
    /// A BGP neighbor statement points at a node that does not exist.
    UnknownBgpPeer {
        /// The misconfigured device.
        device: NodeId,
        /// The nonexistent peer.
        peer: NodeId,
    },
    /// An eBGP session is configured between devices that are not physically
    /// adjacent (Plankton models single-hop eBGP).
    EbgpPeerNotAdjacent {
        /// The misconfigured device.
        device: NodeId,
        /// The non-adjacent peer.
        peer: NodeId,
    },
    /// An iBGP session peers with a device that has no loopback address, so
    /// the session endpoints cannot be resolved through the IGP.
    IbgpPeerWithoutLoopback {
        /// The misconfigured device.
        device: NodeId,
        /// The peer missing a loopback.
        peer: NodeId,
    },
    /// A static route names a next-hop node that is not adjacent.
    StaticNextHopNotAdjacent {
        /// The misconfigured device.
        device: NodeId,
        /// The non-adjacent next hop.
        next_hop: NodeId,
    },
    /// BGP multipath is configured but unsupported by the verifier (§6).
    BgpMultipathUnsupported {
        /// The device with multipath configured.
        device: NodeId,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::DeviceCountMismatch { nodes, configs } => {
                write!(f, "{configs} device configs for {nodes} topology nodes")
            }
            ConfigError::UnknownBgpPeer { device, peer } => {
                write!(f, "{device} has a BGP neighbor {peer} that does not exist")
            }
            ConfigError::EbgpPeerNotAdjacent { device, peer } => {
                write!(f, "{device} has an eBGP session with non-adjacent {peer}")
            }
            ConfigError::IbgpPeerWithoutLoopback { device, peer } => {
                write!(
                    f,
                    "{device} peers over iBGP with {peer} which has no loopback"
                )
            }
            ConfigError::StaticNextHopNotAdjacent { device, next_hop } => {
                write!(f, "{device} has a static route via non-adjacent {next_hop}")
            }
            ConfigError::BgpMultipathUnsupported { device } => {
                write!(
                    f,
                    "{device} enables BGP multipath, which Plankton does not support"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl Network {
    /// A network over `topology` with every device unconfigured.
    pub fn unconfigured(topology: Topology) -> Self {
        let devices = vec![DeviceConfig::empty(); topology.node_count()];
        Network {
            topology,
            devices,
            down_links: Vec::new(),
        }
    }

    /// Is `link` administratively down?
    pub fn is_link_down(&self, link: LinkId) -> bool {
        self.down_links.contains(&link)
    }

    /// Administratively take a link down (idempotent; keeps the canonical
    /// sorted order).
    pub fn set_link_down(&mut self, link: LinkId) {
        if let Err(pos) = self.down_links.binary_search(&link) {
            self.down_links.insert(pos, link);
        }
    }

    /// Bring an administratively-down link back up (idempotent).
    pub fn set_link_up(&mut self, link: LinkId) {
        if let Ok(pos) = self.down_links.binary_search(&link) {
            self.down_links.remove(pos);
        }
    }

    /// The configuration of device `n`.
    pub fn device(&self, n: NodeId) -> &DeviceConfig {
        &self.devices[n.index()]
    }

    /// Mutable access to the configuration of device `n`.
    pub fn device_mut(&mut self, n: NodeId) -> &mut DeviceConfig {
        &mut self.devices[n.index()]
    }

    /// Replace the configuration of device `n`, builder-style.
    pub fn with_device(mut self, n: NodeId, config: DeviceConfig) -> Self {
        self.devices[n.index()] = config;
        self
    }

    /// Number of devices.
    pub fn node_count(&self) -> usize {
        self.topology.node_count()
    }

    /// All devices that run BGP.
    pub fn bgp_speakers(&self) -> Vec<NodeId> {
        self.topology
            .node_ids()
            .filter(|n| self.device(*n).runs_bgp())
            .collect()
    }

    /// All devices that run OSPF.
    pub fn ospf_speakers(&self) -> Vec<NodeId> {
        self.topology
            .node_ids()
            .filter(|n| self.device(*n).runs_ospf())
            .collect()
    }

    /// Every prefix referenced anywhere in the configuration (origins, static
    /// routes, route maps) plus every loopback host prefix. This is the seed
    /// set for the PEC trie (§3.1).
    pub fn referenced_prefixes(&self) -> Vec<Prefix> {
        let mut out: Vec<Prefix> = Vec::new();
        for n in self.topology.node_ids() {
            out.extend(self.device(n).referenced_prefixes());
        }
        for node in self.topology.nodes() {
            if let Some(lb) = node.loopback {
                out.push(Prefix::host(lb));
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// The devices that originate `prefix` into any protocol.
    pub fn origins_of(&self, prefix: &Prefix) -> Vec<NodeId> {
        self.topology
            .node_ids()
            .filter(|n| {
                let d = self.device(*n);
                d.ospf
                    .as_ref()
                    .map(|o| o.originates(prefix))
                    .unwrap_or(false)
                    || d.bgp
                        .as_ref()
                        .map(|b| b.originates(prefix))
                        .unwrap_or(false)
            })
            .collect()
    }

    /// Check the configuration for structural problems. Returns every error
    /// found (an empty vector means the configuration is well-formed).
    pub fn validate(&self) -> Vec<ConfigError> {
        let mut errors = Vec::new();
        if self.devices.len() != self.topology.node_count() {
            errors.push(ConfigError::DeviceCountMismatch {
                nodes: self.topology.node_count(),
                configs: self.devices.len(),
            });
            return errors;
        }
        for n in self.topology.node_ids() {
            let d = self.device(n);
            if let Some(bgp) = &d.bgp {
                if bgp.multipath {
                    errors.push(ConfigError::BgpMultipathUnsupported { device: n });
                }
                for nbr in &bgp.neighbors {
                    if nbr.peer.index() >= self.topology.node_count() {
                        errors.push(ConfigError::UnknownBgpPeer {
                            device: n,
                            peer: nbr.peer,
                        });
                        continue;
                    }
                    match nbr.kind {
                        crate::bgp::BgpSessionKind::Ebgp => {
                            if self.topology.link_between(n, nbr.peer).is_none() {
                                errors.push(ConfigError::EbgpPeerNotAdjacent {
                                    device: n,
                                    peer: nbr.peer,
                                });
                            }
                        }
                        crate::bgp::BgpSessionKind::Ibgp => {
                            if self.topology.node(nbr.peer).loopback.is_none() {
                                errors.push(ConfigError::IbgpPeerWithoutLoopback {
                                    device: n,
                                    peer: nbr.peer,
                                });
                            }
                        }
                    }
                }
            }
            for sr in &d.static_routes {
                if let crate::static_routes::StaticNextHop::Interface(next) = sr.next_hop {
                    if self.topology.link_between(n, next).is_none() {
                        errors.push(ConfigError::StaticNextHopNotAdjacent {
                            device: n,
                            next_hop: next,
                        });
                    }
                }
            }
        }
        errors
    }

    /// Serialize to the JSON configuration format.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("Network is always serializable")
    }

    /// Parse a network from the JSON configuration format.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bgp::{BgpConfig, BgpNeighborConfig};
    use crate::ospf::OspfConfig;
    use crate::static_routes::StaticRoute;
    use plankton_net::ip::Ipv4Addr;
    use plankton_net::topology::TopologyBuilder;

    fn two_routers() -> (Topology, NodeId, NodeId) {
        let mut b = TopologyBuilder::new();
        let a = b.add_router("a");
        let c = b.add_router("c");
        b.set_loopback(a, Ipv4Addr::new(1, 1, 1, 1));
        b.set_loopback(c, Ipv4Addr::new(2, 2, 2, 2));
        b.add_link(a, c);
        (b.build(), a, c)
    }

    #[test]
    fn unconfigured_is_valid() {
        let (t, _, _) = two_routers();
        let net = Network::unconfigured(t);
        assert!(net.validate().is_empty());
        assert!(net.bgp_speakers().is_empty());
    }

    #[test]
    fn referenced_prefixes_include_loopbacks() {
        let (t, a, _) = two_routers();
        let mut net = Network::unconfigured(t);
        net.device_mut(a).ospf = Some(OspfConfig::originating(vec!["10.0.0.0/24"
            .parse()
            .unwrap()]));
        let ps = net.referenced_prefixes();
        assert!(ps.contains(&"10.0.0.0/24".parse().unwrap()));
        assert!(ps.contains(&Prefix::host(Ipv4Addr::new(1, 1, 1, 1))));
        assert!(ps.contains(&Prefix::host(Ipv4Addr::new(2, 2, 2, 2))));
    }

    #[test]
    fn origins_of_finds_originators() {
        let (t, a, c) = two_routers();
        let p: Prefix = "10.0.0.0/24".parse().unwrap();
        let mut net = Network::unconfigured(t);
        net.device_mut(a).ospf = Some(OspfConfig::originating(vec![p]));
        net.device_mut(c).bgp = Some(BgpConfig::new(65001, 2).with_network(p));
        let origins = net.origins_of(&p);
        assert_eq!(origins, vec![a, c]);
    }

    #[test]
    fn validate_detects_non_adjacent_ebgp() {
        let mut b = TopologyBuilder::new();
        let a = b.add_router("a");
        let c = b.add_router("c");
        let d = b.add_router("d");
        b.add_link(a, c);
        b.add_link(c, d);
        let t = b.build();
        let mut net = Network::unconfigured(t);
        net.device_mut(a).bgp =
            Some(BgpConfig::new(65001, 1).with_neighbor(BgpNeighborConfig::ebgp(d, 65003)));
        let errs = net.validate();
        assert_eq!(errs.len(), 1);
        assert!(matches!(errs[0], ConfigError::EbgpPeerNotAdjacent { .. }));
    }

    #[test]
    fn validate_detects_ibgp_without_loopback() {
        let mut b = TopologyBuilder::new();
        let a = b.add_router("a");
        let c = b.add_router("c");
        b.add_link(a, c);
        let t = b.build();
        let mut net = Network::unconfigured(t);
        net.device_mut(a).bgp =
            Some(BgpConfig::new(65001, 1).with_neighbor(BgpNeighborConfig::ibgp(c, 65001)));
        let errs = net.validate();
        assert!(matches!(
            errs[0],
            ConfigError::IbgpPeerWithoutLoopback { .. }
        ));
    }

    #[test]
    fn validate_detects_multipath_and_bad_static() {
        let (t, a, _) = two_routers();
        let mut net = Network::unconfigured(t);
        let mut bgp = BgpConfig::new(65001, 1);
        bgp.multipath = true;
        net.device_mut(a).bgp = Some(bgp);
        net.device_mut(a)
            .static_routes
            .push(StaticRoute::to_interface(
                "10.0.0.0/8".parse().unwrap(),
                NodeId(99),
            ));
        let errs = net.validate();
        assert_eq!(errs.len(), 2);
    }

    #[test]
    fn json_roundtrip() {
        let (t, a, _) = two_routers();
        let mut net = Network::unconfigured(t);
        net.device_mut(a).ospf = Some(OspfConfig::originating(vec!["10.0.0.0/24"
            .parse()
            .unwrap()]));
        let json = net.to_json();
        let back = Network::from_json(&json).unwrap();
        assert_eq!(back.node_count(), 2);
        assert!(back.device(a).runs_ospf());
    }
}
