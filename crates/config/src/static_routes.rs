//! Static route configuration.

use plankton_net::ip::{Ipv4Addr, Prefix};
use plankton_net::topology::NodeId;
use serde::{Deserialize, Serialize};

/// Where a static route sends matching traffic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StaticNextHop {
    /// A next-hop IP address. If the address is not directly connected the
    /// route is *recursive*: the forwarding decision depends on how the
    /// network routes towards that address, which creates a PEC dependency
    /// (§3.2 of the paper, including the self-loop case observed on the
    /// real-world configurations).
    Ip(Ipv4Addr),
    /// Send directly to an adjacent device (an interface route).
    Interface(NodeId),
    /// Discard matching traffic (a null route).
    Null,
}

/// A single static route on a device.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StaticRoute {
    /// Destination prefix.
    pub prefix: Prefix,
    /// Next hop.
    pub next_hop: StaticNextHop,
    /// Administrative distance (default 1; a "floating" static route uses a
    /// higher value so that a dynamic protocol wins while it has a route).
    pub admin_distance: u8,
}

impl StaticRoute {
    /// A static route to an adjacent device with the default distance.
    pub fn to_interface(prefix: Prefix, neighbor: NodeId) -> Self {
        StaticRoute {
            prefix,
            next_hop: StaticNextHop::Interface(neighbor),
            admin_distance: crate::admin_distance::STATIC,
        }
    }

    /// A (possibly recursive) static route to a next-hop address.
    pub fn to_ip(prefix: Prefix, next_hop: Ipv4Addr) -> Self {
        StaticRoute {
            prefix,
            next_hop: StaticNextHop::Ip(next_hop),
            admin_distance: crate::admin_distance::STATIC,
        }
    }

    /// A null route.
    pub fn null(prefix: Prefix) -> Self {
        StaticRoute {
            prefix,
            next_hop: StaticNextHop::Null,
            admin_distance: crate::admin_distance::STATIC,
        }
    }

    /// Override the administrative distance, builder-style.
    pub fn with_distance(mut self, distance: u8) -> Self {
        self.admin_distance = distance;
        self
    }

    /// Is this a recursive route (next hop given as an IP address)?
    pub fn is_recursive(&self) -> bool {
        matches!(self.next_hop, StaticNextHop::Ip(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let p: Prefix = "10.0.0.0/24".parse().unwrap();
        let a = StaticRoute::to_interface(p, NodeId(3));
        assert_eq!(a.admin_distance, 1);
        assert!(!a.is_recursive());
        let b = StaticRoute::to_ip(p, Ipv4Addr::new(192, 168, 0, 1));
        assert!(b.is_recursive());
        let c = StaticRoute::null(p).with_distance(250);
        assert_eq!(c.admin_distance, 250);
        assert_eq!(c.next_hop, StaticNextHop::Null);
    }
}
