//! BGP configuration for a single device.

use crate::route_map::RouteMap;
use plankton_net::ip::Prefix;
use plankton_net::topology::NodeId;
use serde::{Deserialize, Serialize};

/// Whether a BGP session is external (between different ASes, usually over a
/// directly connected link) or internal (within an AS, usually between
/// loopbacks and therefore dependent on the IGP for reachability — this is
/// what creates cross-PEC dependencies, §3.2 of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BgpSessionKind {
    /// External BGP.
    Ebgp,
    /// Internal BGP.
    Ibgp,
}

/// Configuration of a single BGP neighbor (session).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BgpNeighborConfig {
    /// The peer device.
    pub peer: NodeId,
    /// The peer's AS number as configured (`remote-as`).
    pub remote_as: u32,
    /// eBGP or iBGP.
    pub kind: BgpSessionKind,
    /// Import policy applied to advertisements received from this peer.
    pub import: RouteMap,
    /// Export policy applied to advertisements sent to this peer.
    pub export: RouteMap,
    /// Whether this router rewrites the next hop to itself when propagating
    /// routes to this (iBGP) peer.
    pub next_hop_self: bool,
}

impl BgpNeighborConfig {
    /// An eBGP session with no policy.
    pub fn ebgp(peer: NodeId, remote_as: u32) -> Self {
        BgpNeighborConfig {
            peer,
            remote_as,
            kind: BgpSessionKind::Ebgp,
            import: RouteMap::permit_all(),
            export: RouteMap::permit_all(),
            next_hop_self: false,
        }
    }

    /// An iBGP session with no policy.
    pub fn ibgp(peer: NodeId, local_as: u32) -> Self {
        BgpNeighborConfig {
            peer,
            remote_as: local_as,
            kind: BgpSessionKind::Ibgp,
            import: RouteMap::permit_all(),
            export: RouteMap::permit_all(),
            next_hop_self: false,
        }
    }

    /// Replace the import policy, builder-style.
    pub fn with_import(mut self, import: RouteMap) -> Self {
        self.import = import;
        self
    }

    /// Replace the export policy, builder-style.
    pub fn with_export(mut self, export: RouteMap) -> Self {
        self.export = export;
        self
    }

    /// Enable next-hop-self, builder-style.
    pub fn with_next_hop_self(mut self) -> Self {
        self.next_hop_self = true;
        self
    }
}

/// BGP configuration of one router.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BgpConfig {
    /// This router's AS number.
    pub asn: u32,
    /// Router id, used as the final deterministic tie-breaker in the BGP
    /// decision process.
    pub router_id: u32,
    /// Configured neighbors.
    pub neighbors: Vec<BgpNeighborConfig>,
    /// Prefixes this router originates into BGP (`network` statements).
    pub networks: Vec<Prefix>,
    /// Whether BGP multipath is configured. Plankton's prototype does not
    /// support BGP multipath (§6 of the paper); the flag is carried so that
    /// the verifier can reject such configurations explicitly rather than
    /// silently mis-verify them.
    pub multipath: bool,
}

impl BgpConfig {
    /// A BGP process in `asn` with the given router id and no neighbors.
    pub fn new(asn: u32, router_id: u32) -> Self {
        BgpConfig {
            asn,
            router_id,
            neighbors: Vec::new(),
            networks: Vec::new(),
            multipath: false,
        }
    }

    /// Add a neighbor, builder-style.
    pub fn with_neighbor(mut self, n: BgpNeighborConfig) -> Self {
        self.neighbors.push(n);
        self
    }

    /// Add an originated prefix, builder-style.
    pub fn with_network(mut self, prefix: Prefix) -> Self {
        self.networks.push(prefix);
        self
    }

    /// The session configuration for `peer`, if one exists.
    pub fn neighbor(&self, peer: NodeId) -> Option<&BgpNeighborConfig> {
        self.neighbors.iter().find(|n| n.peer == peer)
    }

    /// Does this router originate `prefix` into BGP?
    pub fn originates(&self, prefix: &Prefix) -> bool {
        self.networks.contains(prefix)
    }

    /// All iBGP neighbors.
    pub fn ibgp_neighbors(&self) -> impl Iterator<Item = &BgpNeighborConfig> {
        self.neighbors
            .iter()
            .filter(|n| n.kind == BgpSessionKind::Ibgp)
    }

    /// All eBGP neighbors.
    pub fn ebgp_neighbors(&self) -> impl Iterator<Item = &BgpNeighborConfig> {
        self.neighbors
            .iter()
            .filter(|n| n.kind == BgpSessionKind::Ebgp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route_map::{MatchCondition, SetAction};

    #[test]
    fn builder_and_lookup() {
        let cfg = BgpConfig::new(65001, 1)
            .with_neighbor(BgpNeighborConfig::ebgp(NodeId(2), 65002))
            .with_neighbor(BgpNeighborConfig::ibgp(NodeId(3), 65001).with_next_hop_self())
            .with_network("10.0.0.0/24".parse().unwrap());
        assert_eq!(cfg.neighbors.len(), 2);
        assert_eq!(cfg.neighbor(NodeId(2)).unwrap().remote_as, 65002);
        assert!(cfg.neighbor(NodeId(9)).is_none());
        assert!(cfg.originates(&"10.0.0.0/24".parse().unwrap()));
        assert!(!cfg.originates(&"10.0.1.0/24".parse().unwrap()));
        assert_eq!(cfg.ibgp_neighbors().count(), 1);
        assert_eq!(cfg.ebgp_neighbors().count(), 1);
        assert!(cfg.neighbor(NodeId(3)).unwrap().next_hop_self);
    }

    #[test]
    fn session_kinds() {
        let e = BgpNeighborConfig::ebgp(NodeId(1), 65002);
        assert_eq!(e.kind, BgpSessionKind::Ebgp);
        let i = BgpNeighborConfig::ibgp(NodeId(1), 65001);
        assert_eq!(i.kind, BgpSessionKind::Ibgp);
        assert_eq!(i.remote_as, 65001);
    }

    #[test]
    fn neighbor_policies_attach() {
        let import = RouteMap::permit_with(
            vec![MatchCondition::Community(65000)],
            vec![SetAction::LocalPref(300)],
        );
        let n = BgpNeighborConfig::ebgp(NodeId(1), 65002).with_import(import.clone());
        assert_eq!(n.import, import);
        assert!(n.export.is_permit_all());
    }
}
