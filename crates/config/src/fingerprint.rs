//! Content fingerprinting of configuration state.
//!
//! The incremental verification service keys its result cache by *what a
//! verification task actually reads*: the PEC's own configuration content
//! plus a network "slice" per protocol (everything an `OspfModel` /
//! `BgpModel` constructor consumes). Fingerprints are stable 64-bit FNV-1a
//! hashes computed over the serde [`Value`](serde::Value) tree, so any type
//! that serializes deterministically (the whole configuration model: derive
//! order is declaration order, maps are `BTreeMap`s) can be hashed without
//! bespoke per-type code.
//!
//! These are cache keys, not security hashes: a collision merely serves a
//! stale verification result, and 64-bit FNV over structured input makes
//! that astronomically unlikely for the config sizes involved.

use crate::Network;
use plankton_net::failure::FailureSet;
use plankton_net::topology::{LinkId, NodeId, SubgraphComponents};
use serde::{Serialize, Value};
use std::cell::RefCell;
use std::collections::HashMap;

/// A 64-bit FNV-1a hasher with structure tagging.
#[derive(Clone, Debug)]
pub struct Fingerprinter {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fingerprinter {
    fn default() -> Self {
        Self::new()
    }
}

impl Fingerprinter {
    /// A fresh hasher.
    pub fn new() -> Self {
        Fingerprinter { state: FNV_OFFSET }
    }

    /// Absorb raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorb one byte (used as a structure/type tag).
    pub fn write_u8(&mut self, b: u8) {
        self.write_bytes(&[b]);
    }

    /// Absorb a u64 (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorb a string (length-prefixed).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// Absorb a serde value tree, tagged by shape.
    pub fn write_value(&mut self, v: &Value) {
        match v {
            Value::Null => self.write_u8(0),
            Value::Bool(b) => {
                self.write_u8(1);
                self.write_u8(*b as u8);
            }
            Value::Int(n) => {
                self.write_u8(2);
                self.write_u64(*n as u64);
            }
            Value::UInt(n) => {
                self.write_u8(3);
                self.write_u64(*n);
            }
            Value::Float(f) => {
                self.write_u8(4);
                self.write_u64(f.to_bits());
            }
            Value::Str(s) => {
                self.write_u8(5);
                self.write_str(s);
            }
            Value::Array(items) => {
                self.write_u8(6);
                self.write_u64(items.len() as u64);
                for item in items {
                    self.write_value(item);
                }
            }
            Value::Object(fields) => {
                self.write_u8(7);
                self.write_u64(fields.len() as u64);
                for (k, val) in fields {
                    self.write_str(k);
                    self.write_value(val);
                }
            }
        }
    }

    /// Absorb any serializable value.
    pub fn write<T: Serialize + ?Sized>(&mut self, t: &T) {
        self.write_value(&t.to_value());
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Version of the task-key fingerprint scheme. Persisted result caches are
/// stamped with this value and rejected on mismatch: a content key is only
/// meaningful under the exact hashing scheme that produced it, so any change
/// to key derivation (hasher, slice definitions, key composition, or the
/// serialized shape of any hashed type) must bump this constant. Rejecting a
/// stale snapshot costs one cold verification; accepting one would silently
/// serve results keyed under different semantics.
pub const FINGERPRINT_SCHEME_VERSION: u32 = 1;

/// Fingerprint one serializable value.
pub fn fingerprint_of<T: Serialize + ?Sized>(t: &T) -> u64 {
    let mut fp = Fingerprinter::new();
    fp.write(t);
    fp.finish()
}

/// Combine already-computed fingerprints order-sensitively.
pub fn combine(parts: &[u64]) -> u64 {
    let mut fp = Fingerprinter::new();
    for &p in parts {
        fp.write_u64(p);
    }
    fp.finish()
}

impl Network {
    /// A fingerprint of the entire network document (topology, every device
    /// configuration, administratively-down links). Any observable
    /// configuration change changes this value. Hashed from a canonical
    /// traversal rather than the raw serde tree, because the topology's
    /// serialized form includes a `HashMap` name index whose iteration
    /// order is not deterministic.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprinter::new();
        fp.write_u8(b'N');
        fp.write_u64(self.node_count() as u64);
        for node in self.topology.nodes() {
            fp.write_str(&node.name);
            fp.write_u8(matches!(node.kind, plankton_net::topology::NodeKind::Host) as u8);
            match node.loopback {
                Some(lb) => fp.write_u64(lb.0 as u64),
                None => fp.write_u8(0xff),
            }
        }
        fp.write_u64(self.topology.link_count() as u64);
        for link in self.topology.links() {
            fp.write_u64(link.a.node.0 as u64);
            fp.write_u64(link.b.node.0 as u64);
            for ifc in [&link.a, &link.b] {
                match ifc.addr {
                    Some(addr) => {
                        fp.write_u64(addr.ip.0 as u64);
                        fp.write_u64(addr.prefix_len as u64);
                    }
                    None => fp.write_u8(0xfe),
                }
            }
        }
        fp.write(&self.down_links);
        fp.write(&self.devices);
        fp.finish()
    }

    /// The OSPF slice: everything an OSPF protocol instance reads from the
    /// network besides the per-prefix origin set and the failure set — each
    /// OSPF speaker's process configuration (interface costs, disabled
    /// links) and the links joining two OSPF speakers.
    ///
    /// Administratively-down links are deliberately **not** filtered out
    /// here: down-ness reaches every verification task through its
    /// *effective failure set* (scenario choice ∪ down links), which is part
    /// of the task's cache key already. Keeping the slice down-agnostic
    /// makes a `LinkDown` delta's tasks key-identical to the pre-delta tasks
    /// that explored the same link as a chosen failure — so a fault-tolerance
    /// verification pre-pays for the link-failure deltas that follow.
    pub fn ospf_slice_fingerprint(&self) -> u64 {
        let mut fp = Fingerprinter::new();
        fp.write_u8(b'O');
        fp.write_u64(self.node_count() as u64);
        for n in self.topology.node_ids() {
            if let Some(ospf) = &self.device(n).ospf {
                fp.write_u64(n.0 as u64);
                fp.write(ospf);
            }
        }
        for link in self.topology.links() {
            let (a, b) = link.endpoints();
            if self.device(a).runs_ospf() && self.device(b).runs_ospf() {
                fp.write_u64(link.id.0 as u64);
                fp.write_u64(a.0 as u64);
                fp.write_u64(b.0 as u64);
            }
        }
        fp.finish()
    }

    /// The BGP slice: every BGP speaker's configuration (sessions, route
    /// maps, originated networks), the links that can carry an eBGP
    /// session, and the loopback table iBGP sessions and recursive underlay
    /// resolution consult. iBGP reachability itself flows through dependency
    /// PECs, whose own cache keys are composed into dependents' keys. As
    /// with the OSPF slice, down links are *not* filtered: they reach the
    /// task key through the effective failure set.
    pub fn bgp_slice_fingerprint(&self) -> u64 {
        let mut fp = Fingerprinter::new();
        fp.write_u8(b'B');
        fp.write_u64(self.node_count() as u64);
        for n in self.topology.node_ids() {
            if let Some(bgp) = &self.device(n).bgp {
                fp.write_u64(n.0 as u64);
                fp.write(bgp);
            }
        }
        for link in self.topology.links() {
            let (a, b) = link.endpoints();
            let ebgp_pair = |x: plankton_net::topology::NodeId,
                             y: plankton_net::topology::NodeId| {
                self.device(x)
                    .bgp
                    .as_ref()
                    .map(|cfg| cfg.ebgp_neighbors().any(|nbr| nbr.peer == y))
                    .unwrap_or(false)
            };
            if ebgp_pair(a, b) || ebgp_pair(b, a) {
                fp.write_u64(link.id.0 as u64);
                fp.write_u64(a.0 as u64);
                fp.write_u64(b.0 as u64);
            }
        }
        for node in self.topology.nodes() {
            if let Some(lb) = node.loopback {
                fp.write_u64(node.id.0 as u64);
                fp.write_u64(lb.0 as u64);
            }
        }
        fp.finish()
    }

    /// The scoped OSPF slicing state for this network: the OSPF speaker
    /// graph's connected components plus memoized per-component closures.
    /// Compute once per key-derivation pass; see [`OspfScopedSlices`].
    pub fn ospf_scoped_slices(&self) -> OspfScopedSlices<'_> {
        let components = self.topology.subgraph_components(
            |n| self.device(n).runs_ospf(),
            |l| {
                let enabled = |n: plankton_net::topology::NodeId| {
                    self.device(n)
                        .ospf
                        .as_ref()
                        .and_then(|o| o.cost(l.id))
                        .is_some()
                };
                enabled(l.a.node) && enabled(l.b.node)
            },
        );
        OspfScopedSlices {
            network: self,
            components,
            structural: RefCell::new(HashMap::new()),
            relevant: RefCell::new(HashMap::new()),
            cost_maps: RefCell::new(HashMap::new()),
        }
    }

    /// The static-route liveness slice for one device/neighbor pair: the
    /// links between them (an `Interface` static route is installed only
    /// while some joining link is alive — aliveness is decided against the
    /// effective failure set, which the task key carries separately).
    pub fn interface_liveness_fingerprint(
        &self,
        device: plankton_net::topology::NodeId,
        neighbor: plankton_net::topology::NodeId,
    ) -> u64 {
        let mut fp = Fingerprinter::new();
        fp.write_u8(b'L');
        fp.write_u64(device.0 as u64);
        fp.write_u64(neighbor.0 as u64);
        for l in self.topology.links_between(device, neighbor) {
            fp.write_u64(l.0 as u64);
        }
        fp.finish()
    }

    /// The address-ownership slice consulted when resolving recursive
    /// static-route next hops and dependency-PEC loopback records: the
    /// loopback table plus every numbered interface.
    pub fn address_ownership_fingerprint(&self) -> u64 {
        let mut fp = Fingerprinter::new();
        fp.write_u8(b'A');
        fp.write_u64(self.node_count() as u64);
        for node in self.topology.nodes() {
            if let Some(lb) = node.loopback {
                fp.write_u64(node.id.0 as u64);
                fp.write_u64(lb.0 as u64);
            }
        }
        for link in self.topology.links() {
            for ifc in [&link.a, &link.b] {
                if let Some(addr) = ifc.addr {
                    fp.write_u64(ifc.node.0 as u64);
                    fp.write_u64(addr.ip.0 as u64);
                    fp.write_u64(addr.prefix_len as u64);
                }
            }
        }
        fp.finish()
    }
}

/// Per-PEC scoped OSPF slices: fingerprint only what one destination's OSPF
/// exploration can actually read, instead of the global
/// [`Network::ospf_slice_fingerprint`].
///
/// OSPF exploration is a single deterministic trajectory (the checker's
/// `OspfPor` processes the globally cheapest pending update — exactly
/// Dijkstra from the destination's origin set), so a task for a PEC with
/// OSPF origin devices `O` under effective failure set `F` observes exactly:
///
/// * the **structure** of the speaker components containing `O` — member
///   devices and the adjacency-enabled links joining them (down links and
///   failures deliberately *not* filtered out: they reach the task key
///   through the effective failure set, keeping fault-tolerance cache
///   entries valid for the link deltas that follow); and
/// * the **competitive directional costs** under `F`: a cost `c(n ← m)`
///   (configured at `n` for its cheapest live link towards `m`) is readable
///   only when `dist_F(m) + c ≤ dist_F(n)`, where `dist_F` is the
///   shortest-path distance from `O` with the failed links removed. Any
///   costlier advertisement is *shadowed*: the Dijkstra argument processes
///   candidates in nondecreasing cost order, so by the time such a candidate
///   could be picked its node has already converged on something at least as
///   good, and the enabled-set computation never surfaces it. The `≤` keeps
///   equal-cost candidates in scope — they decide ECMP next-hop sets and
///   tie-breaking.
///
/// A cost change outside a PEC's competitive set therefore leaves its task
/// key — and, provably, its byte-exact verification outcome — unchanged.
/// When scoping cannot be established (an origin that is not an OSPF
/// speaker), [`OspfScopedSlices::fingerprint`] returns `None` and the caller
/// falls back to the global slice. Structural fingerprints are memoized per
/// component and competitive-cost fingerprints per (origin set × in-scope
/// failed links), so a key-derivation pass over every (PEC × failure-set)
/// task costs one Dijkstra per distinct memo entry.
pub struct OspfScopedSlices<'a> {
    network: &'a Network,
    components: SubgraphComponents,
    /// Memoized per-component structural fingerprints.
    structural: RefCell<HashMap<usize, u64>>,
    /// Memoized competitive-cost fingerprints keyed by
    /// (sorted origin devices, failed links within the origin components).
    relevant: RefCell<HashMap<ScopeKey, u64>>,
    /// Memoized live directional cost maps keyed by (origin components,
    /// failed links within them) — origin-set independent, so one build
    /// serves every PEC scoped to the same components under the same
    /// failure set.
    cost_maps: RefCell<CostMapMemo>,
}

/// `c(n ← m)` aggregated over live adjacency-enabled links, as directed
/// `(to, from, cost)` triples sorted by `(to, from)`.
type DirectionalCosts = Vec<(NodeId, NodeId, u64)>;

/// Memo table for [`DirectionalCosts`], keyed by (origin components,
/// in-scope failed links).
type CostMapMemo = HashMap<(Vec<usize>, Vec<LinkId>), std::rc::Rc<DirectionalCosts>>;

/// Memo key for competitive-cost fingerprints: (sorted origin devices,
/// in-scope failed links).
type ScopeKey = (Vec<NodeId>, Vec<LinkId>);

impl OspfScopedSlices<'_> {
    /// The speaker-graph components underlying the slices.
    pub fn components(&self) -> &SubgraphComponents {
        &self.components
    }

    /// The OSPF speaker component members around `device`, if it is a
    /// speaker — the region an OSPF edit at `device` can influence, used by
    /// the delta layer's advisory touch reporting.
    pub fn region_of(&self, device: NodeId) -> Option<Vec<NodeId>> {
        let c = self.components.component_of(device)?;
        Some(self.components.members(c).to_vec())
    }

    /// The scoped slice fingerprint for a task whose OSPF origin devices are
    /// `origins`, under effective failure set `failures`; `None` when
    /// scoping cannot be proven sound for these origins (caller falls back
    /// to the global slice).
    pub fn fingerprint(&self, origins: &[NodeId], failures: &FailureSet) -> Option<u64> {
        let mut origins = origins.to_vec();
        origins.sort_unstable();
        origins.dedup();
        let comps = self.components.reachable_components(&origins)?;
        let mut fp = Fingerprinter::new();
        fp.write_u8(b'o');
        fp.write_u64(comps.len() as u64);
        for &c in &comps {
            fp.write_u64(self.structural_fingerprint(c));
        }
        fp.write_u64(self.competitive_fingerprint(&origins, &comps, failures));
        Some(fp.finish())
    }

    /// The structural fingerprint of one component: members plus
    /// adjacency-enabled links (memoized).
    fn structural_fingerprint(&self, c: usize) -> u64 {
        if let Some(&fp) = self.structural.borrow().get(&c) {
            return fp;
        }
        let mut fp = Fingerprinter::new();
        fp.write_u8(b'C');
        let members = self.components.members(c);
        fp.write_u64(members.len() as u64);
        for &n in members {
            fp.write_u64(n.0 as u64);
        }
        let links = self.components.links(c);
        fp.write_u64(links.len() as u64);
        for &l in links {
            let link = self.network.topology.link(l);
            fp.write_u64(l.0 as u64);
            fp.write_u64(link.a.node.0 as u64);
            fp.write_u64(link.b.node.0 as u64);
        }
        let fp = fp.finish();
        self.structural.borrow_mut().insert(c, fp);
        fp
    }

    /// The competitive-cost fingerprint: every directional cost that can be
    /// observed by the Dijkstra trajectory from `origins` with `failures`
    /// removed (memoized per distinct (origins, in-scope failed links)).
    fn competitive_fingerprint(
        &self,
        origins: &[NodeId],
        comps: &[usize],
        failures: &FailureSet,
    ) -> u64 {
        let failed_in_scope: Vec<LinkId> = failures
            .links()
            .iter()
            .copied()
            .filter(|&l| {
                self.components
                    .component_of_link(l)
                    .map(|c| comps.contains(&c))
                    .unwrap_or(false)
            })
            .collect();
        let memo_key = (origins.to_vec(), failed_in_scope);
        if let Some(&fp) = self.relevant.borrow().get(&memo_key) {
            return fp;
        }

        let cost = self.cost_map(comps, &memo_key.1, failures);

        // Multi-source Dijkstra from the origin set: dist(n) is the cost of
        // n's converged best route, relaxing dist(n) ≤ dist(m) + c(n ← m).
        let n_nodes = self.network.node_count();
        let mut dist = vec![u64::MAX; n_nodes];
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, u32)>> = origins
            .iter()
            .map(|o| std::cmp::Reverse((0, o.0)))
            .collect();
        for &o in origins {
            dist[o.index()] = 0;
        }
        while let Some(std::cmp::Reverse((d, n))) = heap.pop() {
            let n = NodeId(n);
            if dist[n.index()] < d {
                continue;
            }
            // The cost triples are sorted by (to, from): n's in-edges are the
            // contiguous (m, n, c(m ← n)) run — relax outwards over them.
            let start = cost.partition_point(|&(to, _, _)| to < n);
            for &(_, m, _) in cost[start..].iter().take_while(|&&(to, _, _)| to == n) {
                // Relaxing m needs c(m ← n).
                let idx = cost
                    .binary_search_by_key(&(m, n), |&(to, from, _)| (to, from))
                    .expect("directional costs are symmetric pairs");
                let cand = d.saturating_add(cost[idx].2);
                if cand < dist[m.index()] {
                    dist[m.index()] = cand;
                    heap.push(std::cmp::Reverse((cand, m.0)));
                }
            }
        }

        // Competitive directional costs: c(n ← m) with
        // dist(m) + c ≤ dist(n). Everything costlier is shadowed.
        let records: Vec<(NodeId, NodeId, u64)> = cost
            .iter()
            .filter(|&&(n, m, c)| {
                let dm = dist[m.index()];
                dm != u64::MAX && dm.saturating_add(c) <= dist[n.index()]
            })
            .copied()
            .collect();
        let mut fp = Fingerprinter::new();
        fp.write_u8(b'R');
        fp.write_u64(origins.len() as u64);
        for &o in origins {
            fp.write_u64(o.0 as u64);
        }
        fp.write_u64(records.len() as u64);
        for (n, m, c) in records {
            fp.write_u64(n.0 as u64);
            fp.write_u64(m.0 as u64);
            fp.write_u64(c);
        }
        let fp = fp.finish();
        self.relevant.borrow_mut().insert(memo_key, fp);
        fp
    }

    /// The live directional cost map of the given components with `failures`
    /// removed: `c(n ← m)` = the cheapest cost configured at `n` over the
    /// live, adjacency-enabled links towards `m` — exactly the aggregation
    /// the OSPF model performs. Origin-independent, so memoized per
    /// (components, in-scope failed links) and shared by every PEC scoped to
    /// the same region.
    fn cost_map(
        &self,
        comps: &[usize],
        failed_in_scope: &[LinkId],
        failures: &FailureSet,
    ) -> std::rc::Rc<DirectionalCosts> {
        let memo_key = (comps.to_vec(), failed_in_scope.to_vec());
        if let Some(map) = self.cost_maps.borrow().get(&memo_key) {
            return map.clone();
        }
        let cost_at = |n: NodeId, l: LinkId| -> u64 {
            self.network
                .device(n)
                .ospf
                .as_ref()
                .and_then(|o| o.cost(l))
                .expect("component links are adjacency-enabled at both ends") as u64
        };
        let mut cost: HashMap<(NodeId, NodeId), u64> = HashMap::new();
        for &c in comps {
            for &l in self.components.links(c) {
                if failures.contains(l) {
                    continue;
                }
                let link = self.network.topology.link(l);
                let (a, b) = (link.a.node, link.b.node);
                let ea = cost.entry((a, b)).or_insert(u64::MAX);
                *ea = (*ea).min(cost_at(a, l));
                let eb = cost.entry((b, a)).or_insert(u64::MAX);
                *eb = (*eb).min(cost_at(b, l));
            }
        }
        let mut triples: DirectionalCosts = cost.into_iter().map(|((n, m), c)| (n, m, c)).collect();
        triples.sort_unstable();
        let map = std::rc::Rc::new(triples);
        self.cost_maps.borrow_mut().insert(memo_key, map.clone());
        map
    }
}

#[cfg(test)]
mod tests {
    use crate::scenarios::{fat_tree_ospf, ring_ospf, CoreStaticRoutes};
    use crate::static_routes::StaticRoute;

    #[test]
    fn fingerprints_are_deterministic() {
        let a = ring_ospf(6).network;
        let b = ring_ospf(6).network;
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.ospf_slice_fingerprint(), b.ospf_slice_fingerprint());
        assert_ne!(a.fingerprint(), ring_ospf(8).network.fingerprint());
    }

    #[test]
    fn static_route_change_leaves_ospf_slice_alone() {
        let mut net = fat_tree_ospf(4, CoreStaticRoutes::None).network;
        let before_slice = net.ospf_slice_fingerprint();
        let before_full = net.fingerprint();
        net.device_mut(plankton_net::topology::NodeId(0))
            .static_routes
            .push(StaticRoute::null("10.9.9.0/24".parse().unwrap()));
        assert_eq!(net.ospf_slice_fingerprint(), before_slice);
        assert_ne!(net.fingerprint(), before_full);
    }

    #[test]
    fn link_down_changes_the_document_but_not_the_slices() {
        // Down-ness flows through the effective failure set (part of every
        // task key), so the protocol slices stay stable — which is what lets
        // a fault-tolerance run's cache entries serve link-down deltas.
        let s = ring_ospf(6);
        let mut net = s.network.clone();
        let slice_before = net.ospf_slice_fingerprint();
        let doc_before = net.fingerprint();
        net.set_link_down(s.ring.links[0]);
        assert_eq!(net.ospf_slice_fingerprint(), slice_before);
        assert_ne!(net.fingerprint(), doc_before);
        net.set_link_up(s.ring.links[0]);
        assert_eq!(net.fingerprint(), doc_before);
    }

    #[test]
    fn ospf_cost_changes_the_ospf_slice() {
        let s = ring_ospf(6);
        let mut net = s.network.clone();
        let before = net.ospf_slice_fingerprint();
        if let Some(ospf) = &mut net.device_mut(s.ring.routers[1]).ospf {
            ospf.interface_costs.insert(s.ring.links[1], 99);
        }
        assert_ne!(net.ospf_slice_fingerprint(), before);
    }

    #[test]
    fn scoped_slice_is_deterministic_and_origin_sensitive() {
        use plankton_net::failure::FailureSet;
        let s = fat_tree_ospf(4, CoreStaticRoutes::None);
        let slices = s.network.ospf_scoped_slices();
        let o1 = vec![s.fat_tree.edge[0][0]];
        let o2 = vec![s.fat_tree.edge[1][0]];
        let none = FailureSet::none();
        let a = slices.fingerprint(&o1, &none).unwrap();
        assert_eq!(a, slices.fingerprint(&o1, &none).unwrap(), "memo stable");
        assert_ne!(
            a,
            slices.fingerprint(&o2, &none).unwrap(),
            "different origins, different competitive sets"
        );
        // A failure inside the component changes distances and thus the
        // competitive set.
        let failed = FailureSet::single(
            s.network
                .topology
                .link_between(s.fat_tree.edge[0][0], s.fat_tree.aggregation[0][0])
                .unwrap(),
        );
        assert_ne!(a, slices.fingerprint(&o1, &failed).unwrap());
    }

    #[test]
    fn non_competitive_cost_change_leaves_scoped_slice_alone() {
        use plankton_net::failure::FailureSet;
        // The aggregation-side cost of an edge link is competitive only for
        // the prefix at that edge switch: a remote pod's scoped slice must
        // not move, while the local pod's must.
        let s = fat_tree_ospf(4, CoreStaticRoutes::None);
        let agg = s.fat_tree.aggregation[0][0];
        let edge = s.fat_tree.edge[0][0];
        let link = s.network.topology.link_between(agg, edge).unwrap();
        let local = vec![edge];
        let remote = vec![s.fat_tree.edge[2][0]];
        let none = FailureSet::none();
        let before = s.network.ospf_scoped_slices();
        let (local_before, remote_before) = (
            before.fingerprint(&local, &none).unwrap(),
            before.fingerprint(&remote, &none).unwrap(),
        );
        let mut net = s.network.clone();
        if let Some(ospf) = &mut net.device_mut(agg).ospf {
            ospf.interface_costs.insert(link, 42);
        }
        let after = net.ospf_scoped_slices();
        assert_ne!(local_before, after.fingerprint(&local, &none).unwrap());
        assert_eq!(remote_before, after.fingerprint(&remote, &none).unwrap());
        // The global slice is coarser: it moves for both.
        assert_ne!(
            s.network.ospf_slice_fingerprint(),
            net.ospf_slice_fingerprint()
        );
    }

    #[test]
    fn scoped_slice_is_down_link_agnostic() {
        use plankton_net::failure::FailureSet;
        let s = ring_ospf(6);
        let origins = vec![s.origin];
        let none = FailureSet::none();
        let before = s.network.ospf_scoped_slices().fingerprint(&origins, &none);
        let mut net = s.network.clone();
        net.set_link_down(s.ring.links[2]);
        // Down-ness reaches keys through the effective failure set; the
        // slice itself must not move, or fault-tolerance cache entries would
        // be lost to every link delta.
        assert_eq!(
            net.ospf_scoped_slices().fingerprint(&origins, &none),
            before
        );
    }

    #[test]
    fn non_speaker_origin_forces_global_fallback() {
        use plankton_net::failure::FailureSet;
        let s = fat_tree_ospf(4, CoreStaticRoutes::None);
        let mut net = s.network.clone();
        let edge = s.fat_tree.edge[0][0];
        net.device_mut(edge).ospf = None;
        let slices = net.ospf_scoped_slices();
        assert_eq!(slices.fingerprint(&[edge], &FailureSet::none()), None);
        assert!(slices.region_of(edge).is_none());
    }

    #[test]
    fn component_split_changes_scoped_slice() {
        use plankton_net::failure::FailureSet;
        // Draining a device's OSPF process splits / shrinks its component:
        // every PEC scoped to that component must re-key.
        let s = ring_ospf(6);
        let origins = vec![s.origin];
        let none = FailureSet::none();
        let before = s
            .network
            .ospf_scoped_slices()
            .fingerprint(&origins, &none)
            .unwrap();
        let mut net = s.network.clone();
        net.device_mut(s.ring.routers[3]).ospf = None;
        let after = net
            .ospf_scoped_slices()
            .fingerprint(&origins, &none)
            .unwrap();
        assert_ne!(before, after);
    }
}
