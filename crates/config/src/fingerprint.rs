//! Content fingerprinting of configuration state.
//!
//! The incremental verification service keys its result cache by *what a
//! verification task actually reads*: the PEC's own configuration content
//! plus a network "slice" per protocol (everything an `OspfModel` /
//! `BgpModel` constructor consumes). Fingerprints are stable 64-bit FNV-1a
//! hashes computed over the serde [`Value`](serde::Value) tree, so any type
//! that serializes deterministically (the whole configuration model: derive
//! order is declaration order, maps are `BTreeMap`s) can be hashed without
//! bespoke per-type code.
//!
//! These are cache keys, not security hashes: a collision merely serves a
//! stale verification result, and 64-bit FNV over structured input makes
//! that astronomically unlikely for the config sizes involved.

use crate::Network;
use serde::{Serialize, Value};

/// A 64-bit FNV-1a hasher with structure tagging.
#[derive(Clone, Debug)]
pub struct Fingerprinter {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fingerprinter {
    fn default() -> Self {
        Self::new()
    }
}

impl Fingerprinter {
    /// A fresh hasher.
    pub fn new() -> Self {
        Fingerprinter { state: FNV_OFFSET }
    }

    /// Absorb raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorb one byte (used as a structure/type tag).
    pub fn write_u8(&mut self, b: u8) {
        self.write_bytes(&[b]);
    }

    /// Absorb a u64 (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorb a string (length-prefixed).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// Absorb a serde value tree, tagged by shape.
    pub fn write_value(&mut self, v: &Value) {
        match v {
            Value::Null => self.write_u8(0),
            Value::Bool(b) => {
                self.write_u8(1);
                self.write_u8(*b as u8);
            }
            Value::Int(n) => {
                self.write_u8(2);
                self.write_u64(*n as u64);
            }
            Value::UInt(n) => {
                self.write_u8(3);
                self.write_u64(*n);
            }
            Value::Float(f) => {
                self.write_u8(4);
                self.write_u64(f.to_bits());
            }
            Value::Str(s) => {
                self.write_u8(5);
                self.write_str(s);
            }
            Value::Array(items) => {
                self.write_u8(6);
                self.write_u64(items.len() as u64);
                for item in items {
                    self.write_value(item);
                }
            }
            Value::Object(fields) => {
                self.write_u8(7);
                self.write_u64(fields.len() as u64);
                for (k, val) in fields {
                    self.write_str(k);
                    self.write_value(val);
                }
            }
        }
    }

    /// Absorb any serializable value.
    pub fn write<T: Serialize + ?Sized>(&mut self, t: &T) {
        self.write_value(&t.to_value());
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Fingerprint one serializable value.
pub fn fingerprint_of<T: Serialize + ?Sized>(t: &T) -> u64 {
    let mut fp = Fingerprinter::new();
    fp.write(t);
    fp.finish()
}

/// Combine already-computed fingerprints order-sensitively.
pub fn combine(parts: &[u64]) -> u64 {
    let mut fp = Fingerprinter::new();
    for &p in parts {
        fp.write_u64(p);
    }
    fp.finish()
}

impl Network {
    /// A fingerprint of the entire network document (topology, every device
    /// configuration, administratively-down links). Any observable
    /// configuration change changes this value. Hashed from a canonical
    /// traversal rather than the raw serde tree, because the topology's
    /// serialized form includes a `HashMap` name index whose iteration
    /// order is not deterministic.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = Fingerprinter::new();
        fp.write_u8(b'N');
        fp.write_u64(self.node_count() as u64);
        for node in self.topology.nodes() {
            fp.write_str(&node.name);
            fp.write_u8(matches!(node.kind, plankton_net::topology::NodeKind::Host) as u8);
            match node.loopback {
                Some(lb) => fp.write_u64(lb.0 as u64),
                None => fp.write_u8(0xff),
            }
        }
        fp.write_u64(self.topology.link_count() as u64);
        for link in self.topology.links() {
            fp.write_u64(link.a.node.0 as u64);
            fp.write_u64(link.b.node.0 as u64);
            for ifc in [&link.a, &link.b] {
                match ifc.addr {
                    Some(addr) => {
                        fp.write_u64(addr.ip.0 as u64);
                        fp.write_u64(addr.prefix_len as u64);
                    }
                    None => fp.write_u8(0xfe),
                }
            }
        }
        fp.write(&self.down_links);
        fp.write(&self.devices);
        fp.finish()
    }

    /// The OSPF slice: everything an OSPF protocol instance reads from the
    /// network besides the per-prefix origin set and the failure set — each
    /// OSPF speaker's process configuration (interface costs, disabled
    /// links) and the links joining two OSPF speakers.
    ///
    /// Administratively-down links are deliberately **not** filtered out
    /// here: down-ness reaches every verification task through its
    /// *effective failure set* (scenario choice ∪ down links), which is part
    /// of the task's cache key already. Keeping the slice down-agnostic
    /// makes a `LinkDown` delta's tasks key-identical to the pre-delta tasks
    /// that explored the same link as a chosen failure — so a fault-tolerance
    /// verification pre-pays for the link-failure deltas that follow.
    pub fn ospf_slice_fingerprint(&self) -> u64 {
        let mut fp = Fingerprinter::new();
        fp.write_u8(b'O');
        fp.write_u64(self.node_count() as u64);
        for n in self.topology.node_ids() {
            if let Some(ospf) = &self.device(n).ospf {
                fp.write_u64(n.0 as u64);
                fp.write(ospf);
            }
        }
        for link in self.topology.links() {
            let (a, b) = link.endpoints();
            if self.device(a).runs_ospf() && self.device(b).runs_ospf() {
                fp.write_u64(link.id.0 as u64);
                fp.write_u64(a.0 as u64);
                fp.write_u64(b.0 as u64);
            }
        }
        fp.finish()
    }

    /// The BGP slice: every BGP speaker's configuration (sessions, route
    /// maps, originated networks), the links that can carry an eBGP
    /// session, and the loopback table iBGP sessions and recursive underlay
    /// resolution consult. iBGP reachability itself flows through dependency
    /// PECs, whose own cache keys are composed into dependents' keys. As
    /// with the OSPF slice, down links are *not* filtered: they reach the
    /// task key through the effective failure set.
    pub fn bgp_slice_fingerprint(&self) -> u64 {
        let mut fp = Fingerprinter::new();
        fp.write_u8(b'B');
        fp.write_u64(self.node_count() as u64);
        for n in self.topology.node_ids() {
            if let Some(bgp) = &self.device(n).bgp {
                fp.write_u64(n.0 as u64);
                fp.write(bgp);
            }
        }
        for link in self.topology.links() {
            let (a, b) = link.endpoints();
            let ebgp_pair = |x: plankton_net::topology::NodeId,
                             y: plankton_net::topology::NodeId| {
                self.device(x)
                    .bgp
                    .as_ref()
                    .map(|cfg| cfg.ebgp_neighbors().any(|nbr| nbr.peer == y))
                    .unwrap_or(false)
            };
            if ebgp_pair(a, b) || ebgp_pair(b, a) {
                fp.write_u64(link.id.0 as u64);
                fp.write_u64(a.0 as u64);
                fp.write_u64(b.0 as u64);
            }
        }
        for node in self.topology.nodes() {
            if let Some(lb) = node.loopback {
                fp.write_u64(node.id.0 as u64);
                fp.write_u64(lb.0 as u64);
            }
        }
        fp.finish()
    }

    /// The static-route liveness slice for one device/neighbor pair: the
    /// links between them (an `Interface` static route is installed only
    /// while some joining link is alive — aliveness is decided against the
    /// effective failure set, which the task key carries separately).
    pub fn interface_liveness_fingerprint(
        &self,
        device: plankton_net::topology::NodeId,
        neighbor: plankton_net::topology::NodeId,
    ) -> u64 {
        let mut fp = Fingerprinter::new();
        fp.write_u8(b'L');
        fp.write_u64(device.0 as u64);
        fp.write_u64(neighbor.0 as u64);
        for l in self.topology.links_between(device, neighbor) {
            fp.write_u64(l.0 as u64);
        }
        fp.finish()
    }

    /// The address-ownership slice consulted when resolving recursive
    /// static-route next hops and dependency-PEC loopback records: the
    /// loopback table plus every numbered interface.
    pub fn address_ownership_fingerprint(&self) -> u64 {
        let mut fp = Fingerprinter::new();
        fp.write_u8(b'A');
        fp.write_u64(self.node_count() as u64);
        for node in self.topology.nodes() {
            if let Some(lb) = node.loopback {
                fp.write_u64(node.id.0 as u64);
                fp.write_u64(lb.0 as u64);
            }
        }
        for link in self.topology.links() {
            for ifc in [&link.a, &link.b] {
                if let Some(addr) = ifc.addr {
                    fp.write_u64(ifc.node.0 as u64);
                    fp.write_u64(addr.ip.0 as u64);
                    fp.write_u64(addr.prefix_len as u64);
                }
            }
        }
        fp.finish()
    }
}

#[cfg(test)]
mod tests {
    use crate::scenarios::{fat_tree_ospf, ring_ospf, CoreStaticRoutes};
    use crate::static_routes::StaticRoute;

    #[test]
    fn fingerprints_are_deterministic() {
        let a = ring_ospf(6).network;
        let b = ring_ospf(6).network;
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.ospf_slice_fingerprint(), b.ospf_slice_fingerprint());
        assert_ne!(a.fingerprint(), ring_ospf(8).network.fingerprint());
    }

    #[test]
    fn static_route_change_leaves_ospf_slice_alone() {
        let mut net = fat_tree_ospf(4, CoreStaticRoutes::None).network;
        let before_slice = net.ospf_slice_fingerprint();
        let before_full = net.fingerprint();
        net.device_mut(plankton_net::topology::NodeId(0))
            .static_routes
            .push(StaticRoute::null("10.9.9.0/24".parse().unwrap()));
        assert_eq!(net.ospf_slice_fingerprint(), before_slice);
        assert_ne!(net.fingerprint(), before_full);
    }

    #[test]
    fn link_down_changes_the_document_but_not_the_slices() {
        // Down-ness flows through the effective failure set (part of every
        // task key), so the protocol slices stay stable — which is what lets
        // a fault-tolerance run's cache entries serve link-down deltas.
        let s = ring_ospf(6);
        let mut net = s.network.clone();
        let slice_before = net.ospf_slice_fingerprint();
        let doc_before = net.fingerprint();
        net.set_link_down(s.ring.links[0]);
        assert_eq!(net.ospf_slice_fingerprint(), slice_before);
        assert_ne!(net.fingerprint(), doc_before);
        net.set_link_up(s.ring.links[0]);
        assert_eq!(net.fingerprint(), doc_before);
    }

    #[test]
    fn ospf_cost_changes_the_ospf_slice() {
        let s = ring_ospf(6);
        let mut net = s.network.clone();
        let before = net.ospf_slice_fingerprint();
        if let Some(ospf) = &mut net.device_mut(s.ring.routers[1]).ospf {
            ospf.interface_costs.insert(s.ring.links[1], 99);
        }
        assert_ne!(net.ospf_slice_fingerprint(), before);
    }
}
