//! # plankton-config
//!
//! The configuration model consumed by the Plankton verifier: per-device
//! OSPF, BGP and static-route configuration, route maps (import/export
//! policy), and the network-wide [`Network`] object that bundles a topology
//! with every device's configuration.
//!
//! The crate also ships [`scenarios`]: ready-made configuration builders for
//! the workloads used in the paper's evaluation (OSPF fat trees with
//! loop-inducing static routes, RFC 7938 BGP data centers, ISP topologies
//! with iBGP over OSPF, enterprise networks with recursive static routes).
//! Examples, integration tests and the benchmark harness all build their
//! networks through these.

pub mod bgp;
pub mod delta;
pub mod device;
pub mod fingerprint;
pub mod network;
pub mod ospf;
pub mod route_map;
pub mod scenarios;
pub mod static_routes;

pub use bgp::{BgpConfig, BgpNeighborConfig, BgpSessionKind};
pub use delta::{ConfigDelta, DeltaError, DeltaTouch};
pub use device::DeviceConfig;
pub use fingerprint::{
    combine, fingerprint_of, Fingerprinter, OspfScopedSlices, FINGERPRINT_SCHEME_VERSION,
};
pub use network::Network;
pub use ospf::OspfConfig;
pub use route_map::{
    MatchCondition, RouteAttrs, RouteMap, RouteMapAction, RouteMapClause, SetAction,
};
pub use static_routes::{StaticNextHop, StaticRoute};

/// Administrative distances used when combining protocols into a FIB,
/// matching common vendor defaults. Lower wins.
pub mod admin_distance {
    /// Directly connected subnets.
    pub const CONNECTED: u8 = 0;
    /// Static routes.
    pub const STATIC: u8 = 1;
    /// eBGP-learned routes.
    pub const EBGP: u8 = 20;
    /// OSPF-learned routes.
    pub const OSPF: u8 = 110;
    /// iBGP-learned routes.
    pub const IBGP: u8 = 200;
}
