//! Named failpoints for chaos testing.
//!
//! A failpoint is a named hook compiled into production code paths
//! (`trigger("cache_save")?`). In normal operation every hook is a single
//! relaxed atomic load — the same zero-cost-when-disabled discipline as
//! `plankton_telemetry` — so hooks can sit on hot paths. Faults are armed
//! from the environment (`PLANKTON_FAILPOINTS`, read once by the binary via
//! [`init_from_env`]) or programmatically from tests via [`configure`].
//!
//! # Spec grammar
//!
//! A spec is a `,`- or `;`-separated list of entries:
//!
//! ```text
//! name=action[:arg][@key:value][*count]
//! ```
//!
//! | action        | effect at the failpoint                              |
//! |---------------|------------------------------------------------------|
//! | `panic`       | `panic!` with a recognizable message                 |
//! | `io_err`      | the hook returns `Err(io::Error)` (kind `Other`)     |
//! | `delay:<N>ms` | sleep N milliseconds, then continue normally         |
//!
//! `@key:value` restricts a fault to keyed triggers — e.g. `task=panic@pec:3`
//! only fires for the task covering PEC 3 ([`trigger_keyed`] with
//! `("pec", 3)`). `*count` limits how many times the fault fires before
//! exhausting itself — `task=panic*1` panics exactly one task and then the
//! failpoint falls dormant, which is how chaos tests prove a daemon recovers
//! *after* a fault rather than tripping it forever.
//!
//! Example: `PLANKTON_FAILPOINTS='cache_save=io_err,write=delay:50ms,task=panic@pec:3*1'`
//!
//! Faults are injection only; surviving them is the responsibility of the
//! code under test. The engine turns injected panics into structured
//! `TaskFailure`s, the cache turns injected I/O errors into cold starts,
//! and the chaos suite (`tests/chaos.rs`) asserts both.

use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{OnceLock, RwLock};
use std::time::Duration;

/// What an armed failpoint does when it fires.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Action {
    /// Panic with a `failpoint '<name>'` message.
    Panic,
    /// Make the hook return an `io::Error` of kind `Other`.
    IoErr,
    /// Sleep for the duration, then continue normally.
    Delay(Duration),
}

#[derive(Debug)]
struct Point {
    name: String,
    action: Action,
    /// `Some((key, value))` restricts the fault to keyed triggers.
    filter: Option<(String, u64)>,
    /// Remaining fire budget; `None` = unlimited.
    remaining: Option<AtomicU64>,
}

/// Fast-path gate: false ⇒ every trigger is one relaxed load and a return.
static ARMED: AtomicBool = AtomicBool::new(false);

fn points() -> &'static RwLock<Vec<Point>> {
    static POINTS: OnceLock<RwLock<Vec<Point>>> = OnceLock::new();
    POINTS.get_or_init(|| RwLock::new(Vec::new()))
}

/// Environment variable read by [`init_from_env`].
pub const ENV_VAR: &str = "PLANKTON_FAILPOINTS";

/// Arm failpoints from `PLANKTON_FAILPOINTS`, if set. Returns the number of
/// armed points. A malformed spec is reported on stderr and skipped rather
/// than killing the process: a chaos harness with a typo should degrade to
/// "no fault", not take the daemon down before the experiment starts.
pub fn init_from_env() -> usize {
    match std::env::var(ENV_VAR) {
        Ok(spec) if !spec.trim().is_empty() => match configure(&spec) {
            Ok(n) => n,
            Err(e) => {
                eprintln!("planktond: ignoring malformed {ENV_VAR}: {e}");
                0
            }
        },
        _ => 0,
    }
}

/// Parse and arm a failpoint spec, replacing any previously armed points.
/// Returns the number of points armed. Empty spec disarms everything.
pub fn configure(spec: &str) -> Result<usize, String> {
    let mut parsed = Vec::new();
    for entry in spec.split([',', ';']) {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        parsed.push(parse_entry(entry)?);
    }
    let n = parsed.len();
    *points().write().unwrap() = parsed;
    ARMED.store(n > 0, Ordering::Release);
    Ok(n)
}

/// Disarm all failpoints and restore the one-atomic-load fast path.
pub fn clear() {
    points().write().unwrap().clear();
    ARMED.store(false, Ordering::Release);
}

/// Whether any failpoint is currently armed.
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

fn parse_entry(entry: &str) -> Result<Point, String> {
    let (name, mut rest) = entry
        .split_once('=')
        .ok_or_else(|| format!("'{entry}': expected name=action"))?;
    let name = name.trim();
    if name.is_empty() {
        return Err(format!("'{entry}': empty failpoint name"));
    }

    let mut remaining = None;
    if let Some((head, count)) = rest.rsplit_once('*') {
        let count: u64 = count
            .trim()
            .parse()
            .map_err(|_| format!("'{entry}': bad fire count '{count}'"))?;
        remaining = Some(AtomicU64::new(count));
        rest = head;
    }

    let mut filter = None;
    if let Some((head, kv)) = rest.split_once('@') {
        let (key, value) = kv
            .split_once(':')
            .ok_or_else(|| format!("'{entry}': expected @key:value"))?;
        let value: u64 = value
            .trim()
            .parse()
            .map_err(|_| format!("'{entry}': bad filter value '{value}'"))?;
        filter = Some((key.trim().to_string(), value));
        rest = head;
    }

    let action = match rest.trim() {
        "panic" => Action::Panic,
        "io_err" => Action::IoErr,
        other => {
            let ms = other
                .strip_prefix("delay:")
                .and_then(|d| d.strip_suffix("ms"))
                .and_then(|d| d.trim().parse::<u64>().ok())
                .ok_or_else(|| {
                    format!("'{entry}': unknown action '{other}' (panic | io_err | delay:<N>ms)")
                })?;
            Action::Delay(Duration::from_millis(ms))
        }
    };

    Ok(Point {
        name: name.to_string(),
        action,
        filter,
        remaining,
    })
}

/// Hit a failpoint. Disabled cost: one relaxed atomic load.
///
/// Unkeyed triggers match only filterless points: a fault scoped with
/// `@key:value` never fires at a hook that cannot identify itself.
#[inline]
pub fn trigger(name: &str) -> io::Result<()> {
    if !ARMED.load(Ordering::Relaxed) {
        return Ok(());
    }
    fire(name, None)
}

/// Hit a failpoint that can identify its work item (e.g. `("pec", 3)`).
/// Matches filterless points and points whose `@key:value` filter equals
/// the supplied pair.
#[inline]
pub fn trigger_keyed(name: &str, key: &str, value: u64) -> io::Result<()> {
    if !ARMED.load(Ordering::Relaxed) {
        return Ok(());
    }
    fire(name, Some((key, value)))
}

#[cold]
fn fire(name: &str, at: Option<(&str, u64)>) -> io::Result<()> {
    let action = {
        let table = points().read().unwrap();
        let Some(point) = table.iter().find(|p| {
            p.name == name
                && match (&p.filter, at) {
                    (None, _) => true,
                    (Some(_), None) => false,
                    (Some((fk, fv)), Some((k, v))) => fk == k && *fv == v,
                }
        }) else {
            return Ok(());
        };
        if let Some(remaining) = &point.remaining {
            // Claim one firing; exhausted points stay armed but inert.
            if remaining
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| n.checked_sub(1))
                .is_err()
            {
                return Ok(());
            }
        }
        point.action.clone()
    };
    match action {
        Action::Panic => panic!("failpoint '{name}': injected panic"),
        Action::IoErr => Err(io::Error::other(format!(
            "failpoint '{name}': injected I/O error"
        ))),
        Action::Delay(d) => {
            std::thread::sleep(d);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One test fn: the armed table is process-global state and `#[test]`
    /// threads run in parallel.
    #[test]
    fn grammar_filters_counts_and_actions() {
        clear();
        assert!(!armed());
        assert!(trigger("anything").is_ok());

        // Parse errors name the offending entry; the table stays disarmed.
        assert!(configure("task").is_err());
        assert!(configure("task=explode").is_err());
        assert!(configure("task=panic@pec").is_err());
        assert!(configure("task=panic*lots").is_err());
        assert!(!armed());

        // io_err fires only at its named point.
        assert_eq!(configure("cache_save=io_err").unwrap(), 1);
        assert!(armed());
        let err = trigger("cache_save").unwrap_err();
        assert!(err.to_string().contains("failpoint 'cache_save'"), "{err}");
        assert!(trigger("cache_load").is_ok());

        // Keyed filter: only the matching (key, value) fires; unkeyed
        // triggers never match a filtered point.
        assert_eq!(configure("task=io_err@pec:3").unwrap(), 1);
        assert!(trigger_keyed("task", "pec", 2).is_ok());
        assert!(trigger_keyed("task", "other", 3).is_ok());
        assert!(trigger("task").is_ok());
        assert!(trigger_keyed("task", "pec", 3).is_err());

        // Fire budget: `*2` fires twice, then the point is inert.
        assert_eq!(configure("write=io_err*2").unwrap(), 1);
        assert!(trigger("write").is_err());
        assert!(trigger("write").is_err());
        assert!(trigger("write").is_ok());
        assert!(armed(), "an exhausted point stays armed but inert");

        // Delay completes normally (and actually waits).
        assert_eq!(configure("write=delay:10ms").unwrap(), 1);
        let start = std::time::Instant::now();
        assert!(trigger("write").is_ok());
        assert!(start.elapsed() >= Duration::from_millis(10));

        // Panic carries a recognizable message.
        assert_eq!(configure("task=panic").unwrap(), 1);
        let caught = std::panic::catch_unwind(|| trigger("task")).unwrap_err();
        let msg = caught.downcast_ref::<String>().unwrap();
        assert!(msg.contains("failpoint 'task'"), "{msg}");

        // Multi-entry specs arm every entry; either separator works.
        assert_eq!(configure("a=io_err;b=panic,c=delay:1ms").unwrap(), 3);
        assert!(trigger("a").is_err());
        assert!(trigger("c").is_ok());

        // clear() restores the free path.
        clear();
        assert!(!armed());
        assert!(trigger("a").is_ok());
    }
}
