//! The zero-cost-when-disabled guarantee for failpoint hooks, asserted with
//! a counting global allocator (same harness as
//! `crates/telemetry/tests/overhead.rs`): a disarmed `trigger` /
//! `trigger_keyed` must not allocate — it is one relaxed atomic load. This
//! is what lets failpoints sit inside the per-task and per-write hot paths
//! without moving the committed bench gates.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use plankton_faultinject as fp;

struct CountingAlloc;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// One test fn so the disarmed-path assertion cannot race an arming test:
/// the failpoint table is process-global and integration tests in one
/// binary run in parallel threads.
#[test]
fn disarmed_triggers_do_not_allocate_and_armed_points_fire() {
    // Phase 1: nothing armed. The full hook path must be allocation-free.
    fp::clear();
    assert!(!fp::armed());
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for i in 0..1000 {
        fp::trigger("cache_save").unwrap();
        fp::trigger("write").unwrap();
        fp::trigger_keyed("task", "pec", i).unwrap();
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "disarmed failpoint path allocated {} times",
        after - before
    );

    // Phase 2: arming flips the gate and the named point fires.
    fp::configure("cache_save=io_err*1").unwrap();
    assert!(fp::armed());
    assert!(fp::trigger("cache_save").is_err());
    assert!(fp::trigger("cache_save").is_ok(), "budget of 1 exhausted");

    // Phase 3: clearing restores the free path.
    fp::clear();
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..1000 {
        fp::trigger("cache_save").unwrap();
    }
    let after = ALLOCATIONS.load(Ordering::Relaxed);
    assert_eq!(after - before, 0);
}
