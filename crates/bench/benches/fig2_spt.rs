//! Criterion benchmark for Figure 2: shortest paths computed by executing
//! the routing algorithm (the model-checking approach) vs. solving a
//! constraint encoding (the SMT-style approach), on a k=4 fat tree.

use criterion::{criterion_group, criterion_main, Criterion};
use plankton_baselines::csp::shortest_path_csp;
use plankton_config::scenarios::{fat_tree_ospf, CoreStaticRoutes};
use plankton_net::failure::FailureSet;
use plankton_net::graph::dijkstra;

fn fig2_benchmark(c: &mut Criterion) {
    let ft = fat_tree_ospf(4, CoreStaticRoutes::None);
    let origin = ft.fat_tree.edge[0][0];
    let n = ft.network.node_count();
    let edges: Vec<(usize, usize, u64)> = ft
        .network
        .topology
        .links()
        .iter()
        .map(|l| (l.a.node.index(), l.b.node.index(), 10u64))
        .collect();

    let mut group = c.benchmark_group("fig2_shortest_paths_n20");
    group.sample_size(10);
    group.bench_function("model_checker_style", |b| {
        b.iter(|| {
            dijkstra(&ft.network.topology, origin, &FailureSet::none(), |_, _| {
                Some(10)
            })
        })
    });
    group.bench_function("smt_style_csp", |b| {
        b.iter(|| {
            let csp = shortest_path_csp(n, &edges, origin.index(), 10 * n as u64);
            csp.solve(50_000_000)
        })
    });
    group.finish();
}

criterion_group!(benches, fig2_benchmark);
criterion_main!(benches);
