//! Criterion benchmarks for the Figure 7 verification workloads (scaled to
//! keep `cargo bench` runs short): the OSPF fat-tree loop check (7a/7b), the
//! BGP data-center waypoint check (7c) and the ring fault-tolerance check
//! that underlies the Figure 8 ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use plankton_config::scenarios::{
    fat_tree_bgp_rfc7938, fat_tree_ospf, ring_ospf, CoreStaticRoutes,
};
use plankton_core::{Plankton, PlanktonOptions};
use plankton_net::failure::FailureScenario;
use plankton_policy::{LoopFreedom, Reachability, Waypoint};

fn fat_tree_loop_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7a_fat_tree_loop");
    group.sample_size(10);
    for (mode, label) in [
        (CoreStaticRoutes::MatchingOspf, "pass"),
        (CoreStaticRoutes::Looping, "fail"),
    ] {
        let s = fat_tree_ospf(4, mode);
        let plankton = Plankton::new(s.network.clone());
        group.bench_function(format!("k4_{label}"), |b| {
            b.iter(|| {
                plankton.verify(
                    &LoopFreedom::everywhere(),
                    &FailureScenario::no_failures(),
                    &PlanktonOptions::with_cores(1),
                )
            })
        });
    }
    group.finish();
}

fn bgp_waypoint_check(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7c_bgp_waypoint");
    group.sample_size(10);
    let s = fat_tree_bgp_rfc7938(4, 1);
    let (src, dst) = s.monitored_edges;
    let prefix = s.fat_tree.prefix_of_edge(dst).expect("edge prefix");
    let plankton = Plankton::new(s.network.clone());
    let policy = Waypoint::new(vec![src], s.waypoints.clone());
    group.bench_function("k4_waypoint", |b| {
        b.iter(|| {
            plankton.verify(
                &policy,
                &FailureScenario::no_failures(),
                &PlanktonOptions::with_cores(1).restricted_to(vec![prefix]),
            )
        })
    });
    group.finish();
}

fn ring_fault_tolerance(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_ring_fault_tolerance");
    group.sample_size(10);
    for n in [4usize, 8, 16] {
        let s = ring_ospf(n);
        let sources: Vec<_> = s.ring.routers[1..].to_vec();
        let plankton = Plankton::new(s.network.clone());
        group.bench_function(format!("ring{n}_1failure_all_opts"), |b| {
            b.iter(|| {
                plankton.verify(
                    &Reachability::new(sources.clone()),
                    &FailureScenario::up_to(1),
                    &PlanktonOptions::default().restricted_to(vec![s.destination]),
                )
            })
        });
        if n <= 8 {
            group.bench_function(format!("ring{n}_1failure_no_opts"), |b| {
                b.iter(|| {
                    plankton.verify(
                        &Reachability::new(sources.clone()),
                        &FailureScenario::up_to(1),
                        &PlanktonOptions::no_optimizations().restricted_to(vec![s.destination]),
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    fat_tree_loop_check,
    bgp_waypoint_check,
    ring_fault_tolerance
);
criterion_main!(benches);
