//! # plankton-bench
//!
//! The benchmark harness that regenerates the paper's evaluation (§5): one
//! function per table/figure, each returning the rows it printed so that the
//! numbers can be recorded in `EXPERIMENTS.md`. The `figures` binary drives
//! them (`cargo run -p plankton-bench --bin figures --release -- --fig 7a`),
//! and the Criterion benches in `benches/` time the hot paths.
//!
//! The absolute sizes are scaled down relative to the paper (the paper's
//! largest runs used a 32-core/188 GB server and multi-hour Minesweeper
//! timeouts); the *shape* of every comparison — who wins, how the gap grows
//! with network size, where timeouts appear — is what these harnesses
//! reproduce. Each figure function documents its parameter scaling.

pub mod compare;
pub mod figures;

pub use compare::{compare, parse_entries, Entry, GateOutcome};
pub use figures::{
    all_figures, checker_bench, cores_scaling, run_figure, CheckerBenchPoint, CoresScalingPoint,
    FigureResult, Row, ServiceBenchPoint,
};
