//! One harness function per table/figure of the paper.

use plankton_baselines::arc::ArcBaseline;
use plankton_baselines::bonsai::compress;
use plankton_baselines::csp::shortest_path_csp;
use plankton_baselines::minesweeper::{Destination, MinesweeperStyle};
use plankton_checker::SearchOptions;
use plankton_config::scenarios::{
    enterprise_scenario, fat_tree_bgp_rfc7938, fat_tree_ospf, isp_ibgp_over_ospf, isp_ospf,
    ring_ospf, CoreStaticRoutes,
};
use plankton_core::{Plankton, PlanktonOptions};
use plankton_net::failure::FailureScenario;
use plankton_net::failure::FailureSet;
use plankton_net::generators::as_topo::AsTopologySpec;
use plankton_net::generators::enterprise::EnterpriseSpec;
use plankton_net::generators::fat_tree::FatTree;
use plankton_net::graph::dijkstra;
use plankton_net::topology::NodeId;
use plankton_policy::{
    BoundedPathLength, LoopFreedom, MultipathConsistency, PathConsistency, Reachability, Waypoint,
};
use std::time::{Duration, Instant};

/// Work budget given to the Minesweeper-style baseline before it reports a
/// timeout (constraint checks).
const BASELINE_BUDGET: u64 = 40_000_000;

/// One printed row of a figure.
#[derive(Clone, Debug)]
pub struct Row {
    /// Row label (workload / configuration).
    pub label: String,
    /// Column values, `(name, value)` pairs.
    pub values: Vec<(String, String)>,
}

impl Row {
    fn new(label: impl Into<String>) -> Self {
        Row {
            label: label.into(),
            values: Vec::new(),
        }
    }

    fn col(mut self, name: &str, value: impl ToString) -> Self {
        self.values.push((name.to_string(), value.to_string()));
        self
    }
}

/// The output of one figure harness.
#[derive(Clone, Debug)]
pub struct FigureResult {
    /// Figure identifier ("2", "7a", ... "9").
    pub id: String,
    /// Caption echoing the paper's.
    pub caption: String,
    /// The rows produced.
    pub rows: Vec<Row>,
}

impl FigureResult {
    /// Render as a markdown-ish table.
    pub fn render(&self) -> String {
        let mut out = format!("Figure {} — {}\n", self.id, self.caption);
        for row in &self.rows {
            out.push_str(&format!("  {:<42}", row.label));
            for (name, value) in &row.values {
                out.push_str(&format!(" {name}={value}"));
            }
            out.push('\n');
        }
        out
    }
}

fn secs(d: Duration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}

fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Figure 2: shortest paths via explicit-state search vs. a constraint
/// ("SMT"-style) encoding, on fat trees of growing size.
///
/// Scaling: the paper uses N = 20..180; the constraint formulation solved by
/// our naive backtracking solver is only practical up to N = 45 here, which
/// already shows the orders-of-magnitude gap.
pub fn fig2(quick: bool) -> FigureResult {
    let ks: &[usize] = if quick { &[4] } else { &[4, 6] };
    let mut rows = Vec::new();
    for &k in ks {
        let ft = fat_tree_ospf(k, CoreStaticRoutes::None);
        let n = ft.network.node_count();
        let origin = ft.fat_tree.edge[0][0];

        // Model-checker side: execute the shortest-path computation.
        let (_, mc_time) = time(|| {
            dijkstra(&ft.network.topology, origin, &FailureSet::none(), |_, _| {
                Some(10)
            })
        });

        // Constraint side: encode and solve.
        let edges: Vec<(usize, usize, u64)> = ft
            .network
            .topology
            .links()
            .iter()
            .map(|l| (l.a.node.index(), l.b.node.index(), 10u64))
            .collect();
        let ((solution, stats), csp_time) = time(|| {
            let csp = shortest_path_csp(n, &edges, origin.index(), 10 * n as u64);
            csp.solve(BASELINE_BUDGET)
        });
        let solved = solution.is_some();

        rows.push(
            Row::new(format!("N={n} (fat tree k={k})"))
                .col("model_checker", secs(mc_time))
                .col(
                    "smt_style",
                    if solved {
                        secs(csp_time)
                    } else {
                        format!(">{} (timeout)", secs(csp_time))
                    },
                )
                .col("smt_checks", stats.checks),
        );
    }
    FigureResult {
        id: "2".into(),
        caption: "Comparison of two ways to compute shortest paths".into(),
        rows,
    }
}

fn edge_sources(ft: &FatTree) -> Vec<NodeId> {
    ft.edges_flat()
}

/// Figure 7(a): fat trees with OSPF + core static routes, loop policy
/// (pass and fail variants), Plankton on 1..cores cores vs. the
/// Minesweeper-style baseline.
pub fn fig7a(quick: bool) -> FigureResult {
    let ks: &[usize] = if quick { &[4] } else { &[4, 6] };
    let cores: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8] };
    let mut rows = Vec::new();
    for &k in ks {
        for (mode, label) in [
            (CoreStaticRoutes::MatchingOspf, "Pass"),
            (CoreStaticRoutes::Looping, "Fail"),
        ] {
            let s = fat_tree_ospf(k, mode);
            let mut row = Row::new(format!("K={k} N={} ({label})", s.network.node_count()));
            for &c in cores {
                let plankton = Plankton::new(s.network.clone());
                let (report, elapsed) = time(|| {
                    plankton.verify(
                        &LoopFreedom::everywhere(),
                        &FailureScenario::no_failures(),
                        &PlanktonOptions::with_cores(c),
                    )
                });
                row = row.col(&format!("plankton_{c}core"), secs(elapsed)).col(
                    &format!("mem_{c}core_MiB"),
                    format!("{:.1}", report.stats.approx_memory_mib()),
                );
                assert_eq!(report.holds(), mode == CoreStaticRoutes::MatchingOspf);
            }
            // Minesweeper-style baseline: monolithic converged-state search
            // over every destination prefix.
            let destinations: Vec<Destination> = s
                .destinations
                .iter()
                .map(|&p| Destination {
                    prefix: p,
                    origins: s.network.origins_of(&p),
                })
                .collect();
            let ms = MinesweeperStyle::new(&s.network);
            let (ms_report, ms_time) = time(|| {
                ms.verify_reachability(&destinations, &edge_sources(&s.fat_tree), BASELINE_BUDGET)
            });
            row = row.col(
                "minesweeper_style",
                if ms_report.timed_out {
                    format!(">{} (timeout)", secs(ms_time))
                } else {
                    secs(ms_time)
                },
            );
            rows.push(row);
        }
    }
    FigureResult {
        id: "7a".into(),
        caption: "Fat trees with OSPF, loop policy, multi-core".into(),
        rows,
    }
}

/// Figure 7(b): larger fat trees, loop (pass/fail) and single-IP
/// reachability, single core.
pub fn fig7b(quick: bool) -> FigureResult {
    let ks: &[usize] = if quick { &[4, 6] } else { &[4, 6, 8] };
    let mut rows = Vec::new();
    for &k in ks {
        for (mode, label) in [
            (CoreStaticRoutes::MatchingOspf, "Loop (Pass)"),
            (CoreStaticRoutes::Looping, "Loop (Fail)"),
        ] {
            let s = fat_tree_ospf(k, mode);
            let plankton = Plankton::new(s.network.clone());
            let (report, elapsed) = time(|| {
                plankton.verify(
                    &LoopFreedom::everywhere(),
                    &FailureScenario::no_failures(),
                    &PlanktonOptions::with_cores(1),
                )
            });
            rows.push(
                Row::new(format!("N={} {label}", s.network.node_count()))
                    .col("time", secs(elapsed))
                    .col(
                        "memory_MiB",
                        format!("{:.1}", report.stats.approx_memory_mib()),
                    )
                    .col("result", if report.holds() { "pass" } else { "fail" }),
            );
        }
        // Single-IP reachability.
        let s = fat_tree_ospf(k, CoreStaticRoutes::None);
        let dest = s.destinations[0];
        let sources = edge_sources(&s.fat_tree);
        let plankton = Plankton::new(s.network.clone());
        let (report, elapsed) = time(|| {
            plankton.verify(
                &Reachability::new(sources.clone()),
                &FailureScenario::no_failures(),
                &PlanktonOptions::with_cores(1).restricted_to(vec![dest]),
            )
        });
        rows.push(
            Row::new(format!(
                "N={} Single IP Reachability",
                s.network.node_count()
            ))
            .col("time", secs(elapsed))
            .col(
                "memory_MiB",
                format!("{:.1}", report.stats.approx_memory_mib()),
            )
            .col("result", if report.holds() { "pass" } else { "fail" }),
        );
    }
    FigureResult {
        id: "7b".into(),
        caption: "Fat trees with OSPF, multiple policies, 1 core".into(),
        rows,
    }
}

/// Figure 7(c): RFC 7938 BGP fat trees with a waypoint misconfiguration —
/// verification time under heavy protocol non-determinism (age-based tie
/// breaking), single core.
pub fn fig7c(quick: bool) -> FigureResult {
    let ks: &[usize] = if quick { &[4] } else { &[4, 6] };
    let trials: u64 = if quick { 2 } else { 4 };
    let mut rows = Vec::new();
    for &k in ks {
        let mut times = Vec::new();
        let mut mems = Vec::new();
        let mut violations = 0usize;
        for seed in 0..trials {
            let s = fat_tree_bgp_rfc7938(k, seed);
            let (src, dst) = s.monitored_edges;
            let dst_prefix = s.fat_tree.prefix_of_edge(dst).expect("edge prefix");
            let plankton = Plankton::new(s.network.clone());
            let policy = Waypoint::new(vec![src], s.waypoints.clone());
            let (report, elapsed) = time(|| {
                plankton.verify(
                    &policy,
                    &FailureScenario::no_failures(),
                    &PlanktonOptions::with_cores(1).restricted_to(vec![dst_prefix]),
                )
            });
            times.push(elapsed);
            mems.push(report.stats.approx_memory_mib());
            if !report.holds() {
                violations += 1;
            }
        }
        let max_t = times.iter().max().copied().unwrap_or_default();
        let avg_t = times.iter().sum::<Duration>() / times.len() as u32;
        rows.push(
            Row::new(format!("N={} (k={k})", FatTree::size_for_k(k)))
                .col("max_time", secs(max_t))
                .col("avg_time", secs(avg_t))
                .col(
                    "max_memory_MiB",
                    format!("{:.1}", mems.iter().cloned().fold(0.0, f64::max)),
                )
                .col("violations_found", format!("{violations}/{trials}")),
        );
    }
    FigureResult {
        id: "7c".into(),
        caption: "Fat trees with BGP, waypoint policy, 1 core".into(),
        rows,
    }
}

/// Figure 7(d): synthetic RocketFuel-scale AS topologies, OSPF, reachability
/// of every customer prefix from a multihomed ingress under ≤1 link failure.
pub fn fig7d(quick: bool) -> FigureResult {
    let asns: &[u32] = if quick {
        &[3967]
    } else {
        &[1221, 1755, 3967, 6461]
    };
    let cores: &[usize] = if quick { &[4] } else { &[1, 8] };
    let mut rows = Vec::new();
    for &asn in asns {
        let s = isp_ospf(&AsTopologySpec::paper_as(asn));
        let mut row = Row::new(format!(
            "{} ({} nodes)",
            s.as_topology.name,
            s.network.node_count()
        ));
        // Restrict to a sample of customer prefixes so the quick mode stays
        // quick; full mode checks them all.
        let prefixes: Vec<_> = if quick {
            s.destinations.iter().take(8).copied().collect()
        } else {
            s.destinations.clone()
        };
        for &c in cores {
            let plankton = Plankton::new(s.network.clone());
            let (report, elapsed) = time(|| {
                plankton.verify(
                    &Reachability::new(vec![s.ingress]),
                    &FailureScenario::up_to(1),
                    &PlanktonOptions::with_cores(c)
                        .restricted_to(prefixes.clone())
                        .collect_all_violations(),
                )
            });
            row = row
                .col(&format!("plankton_{c}core"), secs(elapsed))
                .col("violations", report.violations.len());
        }
        // Minesweeper-style baseline on the same task (no failures — its
        // encoding here does not model failures, which only helps it).
        let ms = MinesweeperStyle::new(&s.network);
        let destinations: Vec<Destination> = prefixes
            .iter()
            .map(|&p| Destination {
                prefix: p,
                origins: s.network.origins_of(&p),
            })
            .collect();
        let (ms_report, ms_time) =
            time(|| ms.verify_reachability(&destinations, &[s.ingress], BASELINE_BUDGET));
        row = row.col(
            "minesweeper_style",
            if ms_report.timed_out {
                format!(">{} (timeout)", secs(ms_time))
            } else {
                secs(ms_time)
            },
        );
        rows.push(row);
    }
    FigureResult {
        id: "7d".into(),
        caption: "AS topologies with OSPF and failures, reachability policy".into(),
        rows,
    }
}

/// Figure 7(e): iBGP over OSPF on the AS topologies (cross-PEC
/// dependencies). Plankton's dependency-aware scheduler vs. the
/// Minesweeper-style encoding that must include every loopback prefix
/// (the n+1-copies blowup).
pub fn fig7e(quick: bool) -> FigureResult {
    let asns: &[u32] = if quick { &[3967] } else { &[1221, 1755, 3967] };
    let mut rows = Vec::new();
    for &asn in asns {
        let s = isp_ibgp_over_ospf(&AsTopologySpec::paper_as(asn));
        let plankton = Plankton::new(s.network.clone());
        // Sources: iBGP speakers that are not themselves borders — their
        // routes to the external prefixes are iBGP-learned and resolve
        // through the OSPF underlay.
        let sources: Vec<NodeId> = s
            .as_topology
            .backbone
            .iter()
            .filter(|n| !s.borders.contains(n))
            .take(4)
            .copied()
            .collect();
        let (report, elapsed) = time(|| {
            plankton.verify(
                &Reachability::new(sources.clone()),
                &FailureScenario::no_failures(),
                &PlanktonOptions::with_cores(4).restricted_to(s.bgp_destinations.clone()),
            )
        });

        // Baseline: the monolithic encoding must include every iBGP speaker's
        // loopback as an additional destination.
        let ms = MinesweeperStyle::new(&s.network);
        let mut destinations: Vec<Destination> = s
            .bgp_destinations
            .iter()
            .map(|&p| Destination {
                prefix: p,
                origins: s.borders.clone(),
            })
            .collect();
        destinations.extend(s.loopback_prefixes.iter().map(|&p| {
            Destination {
                prefix: p,
                origins: s
                    .network
                    .topology
                    .node_ids()
                    .filter(|n| s.network.topology.node(*n).loopback == Some(p.addr()))
                    .collect(),
            }
        }));
        let (ms_report, ms_time) =
            time(|| ms.verify_reachability(&destinations, &sources, BASELINE_BUDGET));

        rows.push(
            Row::new(format!(
                "{} ({} nodes)",
                s.as_topology.name,
                s.network.node_count()
            ))
            .col("plankton", secs(elapsed))
            .col(
                "plankton_result",
                if report.holds() { "holds" } else { "violated" },
            )
            .col("largest_scc", report.largest_scc)
            .col(
                "minesweeper_style",
                if ms_report.timed_out {
                    format!(">{} (timeout, {} vars)", secs(ms_time), ms_report.variables)
                } else {
                    format!("{} ({} vars)", secs(ms_time), ms_report.variables)
                },
            ),
        );
    }
    FigureResult {
        id: "7e".into(),
        caption: "AS topologies with iBGP over OSPF, reachability policy".into(),
        rows,
    }
}

/// Figure 7(f): Bonsai-compressed fat trees, reachability and bounded path
/// length, Plankton vs. the Minesweeper-style baseline (both on the
/// compressed network).
pub fn fig7f(quick: bool) -> FigureResult {
    let ks: &[usize] = if quick { &[4] } else { &[4, 6, 8] };
    let mut rows = Vec::new();
    for &k in ks {
        let s = fat_tree_ospf(k, CoreStaticRoutes::None);
        let origin = s.fat_tree.edge[0][0];
        let probe = s.fat_tree.edge[k - 1][0];
        let prefix = s.fat_tree.prefix_of_edge(origin).expect("edge prefix");
        let compressed = compress(&s.network, &[origin, probe]);
        let q_probe = compressed.abstract_node(probe);

        let plankton = Plankton::new(compressed.network.clone());
        let (reach, t_reach) = time(|| {
            plankton.verify(
                &Reachability::new(vec![q_probe]),
                &FailureScenario::no_failures(),
                &PlanktonOptions::with_cores(8).restricted_to(vec![prefix]),
            )
        });
        let (bpl, t_bpl) = time(|| {
            plankton.verify(
                &BoundedPathLength::new(vec![q_probe], 4),
                &FailureScenario::no_failures(),
                &PlanktonOptions::with_cores(8).restricted_to(vec![prefix]),
            )
        });

        let ms = MinesweeperStyle::new(&compressed.network);
        let destinations = vec![Destination {
            prefix,
            origins: compressed.network.origins_of(&prefix),
        }];
        let (ms_report, ms_time) =
            time(|| ms.verify_reachability(&destinations, &[q_probe], BASELINE_BUDGET));

        rows.push(
            Row::new(format!(
                "N={} compressed to {}",
                s.network.node_count(),
                compressed.network.node_count()
            ))
            .col("plankton_reachability", secs(t_reach))
            .col("plankton_path_length", secs(t_bpl))
            .col("results", format!("{}/{}", reach.holds(), bpl.holds()))
            .col(
                "minesweeper_reachability",
                if ms_report.timed_out {
                    format!(">{}", secs(ms_time))
                } else {
                    secs(ms_time)
                },
            ),
        );
    }
    FigureResult {
        id: "7f".into(),
        caption: "Bonsai-compressed fat trees with OSPF, multiple policies".into(),
        rows,
    }
}

/// Figure 7(g): comparison with the ARC-style baseline — all-to-all
/// reachability under 0, 1 and 2 link failures on fat trees and AS
/// topologies.
pub fn fig7g(quick: bool) -> FigureResult {
    let mut rows = Vec::new();
    let mut workloads: Vec<(
        String,
        plankton_config::Network,
        Vec<NodeId>,
        Vec<plankton_net::ip::Prefix>,
    )> = Vec::new();
    {
        let s = fat_tree_ospf(4, CoreStaticRoutes::None);
        workloads.push((
            format!("Fat tree ({} nodes)", s.network.node_count()),
            s.network.clone(),
            edge_sources(&s.fat_tree),
            s.destinations.clone(),
        ));
    }
    if !quick {
        let s = isp_ospf(&AsTopologySpec::paper_as(1755));
        workloads.push((
            format!("AS 1755 ({} nodes)", s.network.node_count()),
            s.network.clone(),
            s.as_topology.access.iter().take(6).copied().collect(),
            s.destinations.iter().take(6).copied().collect(),
        ));
    }
    let failure_counts: &[usize] = if quick { &[0, 1] } else { &[0, 1, 2] };
    for (label, network, sources, destinations) in workloads {
        for &k in failure_counts {
            let arc = ArcBaseline::new(&network);
            let (arc_report, arc_time) = time(|| arc.all_to_all(&sources, k));
            let plankton = Plankton::new(network.clone());
            let (p_report, p_time) = time(|| {
                plankton.verify(
                    &Reachability::new(sources.clone()),
                    &FailureScenario::up_to(k),
                    &PlanktonOptions::with_cores(8).restricted_to(destinations.clone()),
                )
            });
            rows.push(
                Row::new(format!("{label}, ≤{k} failures"))
                    .col("arc", secs(arc_time))
                    .col(
                        "arc_result",
                        if arc_report.holds() {
                            "holds"
                        } else {
                            "violated"
                        },
                    )
                    .col("plankton", secs(p_time))
                    .col(
                        "plankton_result",
                        if p_report.holds() {
                            "holds"
                        } else {
                            "violated"
                        },
                    ),
            );
        }
    }
    FigureResult {
        id: "7g".into(),
        caption: "Networks with link failures, all-to-all reachability, vs ARC".into(),
        rows,
    }
}

/// Figure 7(h): the synthetic "real-world" enterprise networks — reachability,
/// bounded path length and waypointing, with and without a single failure.
pub fn fig7h(quick: bool) -> FigureResult {
    let specs = EnterpriseSpec::paper_set();
    let specs: Vec<_> = if quick {
        specs.into_iter().take(3).collect()
    } else {
        specs
    };
    let mut rows = Vec::new();
    for spec in &specs {
        let s = enterprise_scenario(spec);
        let plankton = Plankton::new(s.network.clone());
        let sources: Vec<NodeId> = s.enterprise.access.iter().take(4).copied().collect();
        if sources.is_empty() {
            continue;
        }
        let dest = s.external_destination;
        let mut row = Row::new(format!("{} ({} devices)", spec.name, spec.routers));
        for (label, failures) in [
            ("", FailureScenario::no_failures()),
            ("_1fail", FailureScenario::up_to(1)),
        ] {
            let (reach, t1) = time(|| {
                plankton.verify(
                    &Reachability::new(sources.clone()),
                    &failures,
                    &PlanktonOptions::with_cores(1).restricted_to(vec![dest]),
                )
            });
            let (_bpl, t2) = time(|| {
                plankton.verify(
                    &BoundedPathLength::new(sources.clone(), 8),
                    &failures,
                    &PlanktonOptions::with_cores(1).restricted_to(vec![dest]),
                )
            });
            let (_wp, t3) = time(|| {
                plankton.verify(
                    &Waypoint::new(sources.clone(), s.exits.clone()),
                    &failures,
                    &PlanktonOptions::with_cores(1).restricted_to(vec![dest]),
                )
            });
            row = row
                .col(&format!("reach{label}"), secs(t1))
                .col(&format!("bpl{label}"), secs(t2))
                .col(&format!("waypoint{label}"), secs(t3))
                .col(
                    &format!("reach{label}_result"),
                    if reach.holds() { "holds" } else { "violated" },
                );
        }
        rows.push(row);
    }
    FigureResult {
        id: "7h".into(),
        caption: "Real-world-style configs, multiple policies, 1 core".into(),
        rows,
    }
}

/// Figure 7(i): three enterprise networks where Loop, Multipath Consistency
/// and Path Consistency are meaningful, with and without a failure.
pub fn fig7i(quick: bool) -> FigureResult {
    let names = ["II", "III", "IV"];
    let specs: Vec<EnterpriseSpec> = EnterpriseSpec::paper_set()
        .into_iter()
        .filter(|s| names.contains(&s.name.as_str()))
        .collect();
    let specs: Vec<_> = if quick {
        specs.into_iter().take(1).collect()
    } else {
        specs
    };
    let mut rows = Vec::new();
    for spec in &specs {
        let s = enterprise_scenario(spec);
        let plankton = Plankton::new(s.network.clone());
        let probes: Vec<NodeId> = s.enterprise.access.iter().take(3).copied().collect();
        for (policy_name, failures) in [
            ("Loop", 0usize),
            ("Loop", 1),
            ("MultipathConsistency", 0),
            ("MultipathConsistency", 1),
            ("PathConsistency", 0),
            ("PathConsistency", 1),
        ] {
            let scenario = if failures == 0 {
                FailureScenario::no_failures()
            } else {
                FailureScenario::up_to(failures)
            };
            let options =
                PlanktonOptions::with_cores(4).restricted_to(vec![s.external_destination]);
            let (report, elapsed) = match policy_name {
                "Loop" => time(|| plankton.verify(&LoopFreedom::everywhere(), &scenario, &options)),
                "MultipathConsistency" => time(|| {
                    plankton.verify(
                        &MultipathConsistency {
                            sources: Some(probes.clone()),
                        },
                        &scenario,
                        &options,
                    )
                }),
                _ => time(|| {
                    plankton.verify(&PathConsistency::new(probes.clone()), &scenario, &options)
                }),
            };
            rows.push(
                Row::new(format!("{} {policy_name} ≤{failures} failures", spec.name))
                    .col("time", secs(elapsed))
                    .col(
                        "memory_MiB",
                        format!("{:.1}", report.stats.approx_memory_mib()),
                    )
                    .col("result", if report.holds() { "holds" } else { "violated" }),
            );
        }
    }
    FigureResult {
        id: "7i".into(),
        caption: "Real-world-style configs, Loop/Multipath/Path Consistency".into(),
        rows,
    }
}

/// Figure 8: the optimization ablation — rings, fat trees (OSPF and BGP) and
/// the iBGP AS topology with optimizations disabled or limited.
pub fn fig8(quick: bool) -> FigureResult {
    let mut rows = Vec::new();

    // Rings with one failure: all optimizations vs none.
    let ring_sizes: &[usize] = if quick { &[4, 8] } else { &[4, 8, 16] };
    for &n in ring_sizes {
        let s = ring_ospf(n);
        let sources: Vec<NodeId> = s.ring.routers[1..].to_vec();
        let plankton = Plankton::new(s.network.clone());
        let run = |options: PlanktonOptions| {
            time(|| {
                plankton.verify(
                    &Reachability::new(sources.clone()),
                    &FailureScenario::up_to(1),
                    &options.restricted_to(vec![s.destination]),
                )
            })
        };
        let (all_report, all_time) = run(PlanktonOptions::default());
        let mut capped = PlanktonOptions::no_optimizations();
        capped.search.max_steps = if quick { 200_000 } else { 2_000_000 };
        let (none_report, none_time) = run(capped);
        rows.push(
            Row::new(format!("Ring OSPF {n} nodes, 1 failure"))
                .col("all_opts", secs(all_time))
                .col("all_states", all_report.stats.states_explored())
                .col("no_opts", secs(none_time))
                .col("no_opts_states", none_report.stats.states_explored()),
        );
    }

    // OSPF fat tree: all vs none. The unoptimized search is capped (the
    // paper's own table reports it as ">5 min, >8.9 GB"); a truncated run is
    // reported with a ">" marker.
    let s = fat_tree_ospf(4, CoreStaticRoutes::MatchingOspf);
    let plankton = Plankton::new(s.network.clone());
    let (all_report, all_time) = time(|| {
        plankton.verify(
            &LoopFreedom::everywhere(),
            &FailureScenario::no_failures(),
            &PlanktonOptions::default(),
        )
    });
    let mut capped = PlanktonOptions::no_optimizations();
    capped.search.max_steps = if quick { 200_000 } else { 2_000_000 };
    let (none_report, none_time) = time(|| {
        plankton.verify(
            &LoopFreedom::everywhere(),
            &FailureScenario::no_failures(),
            &capped,
        )
    });
    let marker = if none_report.stats.truncated { ">" } else { "" };
    rows.push(
        Row::new("Fat tree OSPF 20 nodes")
            .col("all_opts", secs(all_time))
            .col("all_states", all_report.stats.states_explored())
            .col("no_opts", format!("{marker}{}", secs(none_time)))
            .col(
                "no_opts_states",
                format!("{marker}{}", none_report.stats.states_explored()),
            ),
    );

    // BGP fat tree waypoint: all vs no-deterministic-node vs
    // no-policy-pruning.
    let s = fat_tree_bgp_rfc7938(4, 1);
    let (src, dst) = s.monitored_edges;
    let dst_prefix = s.fat_tree.prefix_of_edge(dst).expect("edge prefix");
    let policy = Waypoint::new(vec![src], s.waypoints.clone());
    let plankton = Plankton::new(s.network.clone());
    let run = |search: SearchOptions| {
        time(|| {
            plankton.verify(
                &policy,
                &FailureScenario::no_failures(),
                &PlanktonOptions::with_cores(1)
                    .restricted_to(vec![dst_prefix])
                    .with_search(search),
            )
        })
    };
    let ablation_cap = if quick { 200_000 } else { 2_000_000 };
    let (all_r, all_t) = run(SearchOptions::all_optimizations());
    let mut nodet_opts = SearchOptions::all_optimizations().without_deterministic_nodes();
    nodet_opts.max_steps = ablation_cap;
    let (nodet_r, nodet_t) = run(nodet_opts);
    let mut nopol_opts = SearchOptions::all_optimizations().without_policy_pruning();
    nopol_opts.max_steps = ablation_cap;
    let (nopol_r, nopol_t) = run(nopol_opts);
    rows.push(
        Row::new("Fat tree BGP 20 nodes, waypoint")
            .col("all_opts", secs(all_t))
            .col("all_states", all_r.stats.states_explored())
            .col("no_det_node", secs(nodet_t))
            .col("no_det_states", nodet_r.stats.states_explored())
            .col("no_policy_pruning", secs(nopol_t))
            .col("no_policy_states", nopol_r.stats.states_explored()),
    );

    if !quick {
        // iBGP AS topology: with and without deterministic-node detection.
        let s = isp_ibgp_over_ospf(&AsTopologySpec::paper_as(3967));
        let sources: Vec<NodeId> = s.as_topology.access.iter().take(2).copied().collect();
        let plankton = Plankton::new(s.network.clone());
        let run = |search: SearchOptions| {
            time(|| {
                plankton.verify(
                    &Reachability::new(sources.clone()),
                    &FailureScenario::no_failures(),
                    &PlanktonOptions::with_cores(1)
                        .restricted_to(s.bgp_destinations.clone())
                        .with_search(search),
                )
            })
        };
        let (all_r, all_t) = run(SearchOptions::all_optimizations());
        let mut nodet_opts = SearchOptions::all_optimizations().without_deterministic_nodes();
        nodet_opts.max_steps = 2_000_000;
        let (nodet_r, nodet_t) = run(nodet_opts);
        rows.push(
            Row::new(format!("{} iBGP", s.as_topology.name))
                .col("all_opts", secs(all_t))
                .col("all_states", all_r.stats.states_explored())
                .col("no_det_node", secs(nodet_t))
                .col("no_det_states", nodet_r.stats.states_explored()),
        );
    }

    FigureResult {
        id: "8".into(),
        caption: "Experiments with optimizations disabled/limited".into(),
        rows,
    }
}

/// Figure 9: the effect of bitstate hashing on memory usage.
pub fn fig9(quick: bool) -> FigureResult {
    let ks: &[usize] = if quick { &[4] } else { &[4, 6] };
    let mut rows = Vec::new();
    for &k in ks {
        let s = fat_tree_bgp_rfc7938(k, 2);
        let (src, dst) = s.monitored_edges;
        let dst_prefix = s.fat_tree.prefix_of_edge(dst).expect("edge prefix");
        let policy = Waypoint::new(vec![src], s.waypoints.clone());
        let plankton = Plankton::new(s.network.clone());
        let run = |search: SearchOptions| {
            plankton.verify(
                &policy,
                &FailureScenario::no_failures(),
                &PlanktonOptions::with_cores(1)
                    .restricted_to(vec![dst_prefix])
                    .with_search(search),
            )
        };
        let exact = run(SearchOptions::all_optimizations());
        let bitstate = run(SearchOptions::all_optimizations().with_bitstate(1 << 22));
        rows.push(
            Row::new(format!("{} node BGP DC waypoint", s.network.node_count()))
                .col(
                    "no_bitstate_MiB",
                    format!("{:.2}", exact.stats.approx_memory_mib()),
                )
                .col(
                    "bitstate_MiB",
                    format!("{:.2}", bitstate.stats.approx_memory_mib()),
                )
                .col("states", exact.stats.states_explored())
                .col("agreement", exact.holds() == bitstate.holds()),
        );
    }
    // AS fault tolerance with and without bitstate hashing.
    let s = isp_ospf(&AsTopologySpec::paper_as(3967));
    let prefixes: Vec<_> = s.destinations.iter().take(4).copied().collect();
    let plankton = Plankton::new(s.network.clone());
    let run = |search: SearchOptions| {
        plankton.verify(
            &Reachability::new(vec![s.ingress]),
            &FailureScenario::up_to(1),
            &PlanktonOptions::with_cores(1)
                .restricted_to(prefixes.clone())
                .collect_all_violations()
                .with_search(search),
        )
    };
    let exact = run(SearchOptions::all_optimizations());
    let bitstate = run(SearchOptions::all_optimizations().with_bitstate(1 << 22));
    rows.push(
        Row::new(format!("{} fault tolerance", s.as_topology.name))
            .col(
                "no_bitstate_MiB",
                format!("{:.2}", exact.stats.approx_memory_mib()),
            )
            .col(
                "bitstate_MiB",
                format!("{:.2}", bitstate.stats.approx_memory_mib()),
            )
            .col("agreement", exact.holds() == bitstate.holds()),
    );
    FigureResult {
        id: "9".into(),
        caption: "The effect of bitstate hashing on memory usage".into(),
        rows,
    }
}

/// One measured point of the cores-scaling sweep, serialized as JSON so
/// future changes can track parallel speedup across commits.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct CoresScalingPoint {
    /// Engine workers used.
    pub workers: usize,
    /// Wall-clock seconds for the verification.
    pub seconds: f64,
    /// Speedup relative to the 1-worker run of the same sweep.
    pub speedup: f64,
    /// Tasks in the engine's (component × failure-scenario) graph.
    pub tasks_total: usize,
    /// Tasks that migrated between workers by stealing.
    pub tasks_stolen: u64,
    /// States explored by the model checker (identical across worker counts
    /// — a sanity check that parallelism does not change the search).
    pub states_explored: u64,
}

/// Cores-scaling sweep: the fat-tree loop workload on a growing engine
/// worker pool. The last row carries the raw sweep as JSON.
///
/// Scaling note: the shape of the curve depends on the machine — on a
/// single-core container every worker count measures the same serialized
/// work (speedup ≈ 1.0 plus scheduling overhead), while multi-core machines
/// should approach linear speedup, since the fat-tree workload is dozens of
/// independent (PEC × failure-scenario) tasks.
pub fn cores_scaling(quick: bool) -> FigureResult {
    let cores: &[usize] = if quick { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    let s = fat_tree_ospf(4, CoreStaticRoutes::MatchingOspf);
    let scenario = if quick {
        FailureScenario::no_failures()
    } else {
        FailureScenario::up_to(1)
    };
    let plankton = Plankton::new(s.network.clone());
    let mut rows = Vec::new();
    let mut points: Vec<CoresScalingPoint> = Vec::new();
    let mut base_seconds = None;
    for &c in cores {
        let (report, elapsed) = time(|| {
            plankton.verify(
                &LoopFreedom::everywhere(),
                &scenario,
                &PlanktonOptions::with_cores(c).collect_all_violations(),
            )
        });
        assert!(
            report.holds(),
            "the matching-static-routes fat tree is loop-free"
        );
        let seconds = elapsed.as_secs_f64();
        let base = *base_seconds.get_or_insert(seconds);
        let speedup = base / seconds.max(1e-9);
        let engine = report.engine.clone().expect("engine stats recorded");
        rows.push(
            Row::new(format!("{c} workers"))
                .col("time", secs(elapsed))
                .col("speedup", format!("{speedup:.2}x"))
                .col("tasks", engine.tasks_total)
                .col("stolen", engine.tasks_stolen),
        );
        points.push(CoresScalingPoint {
            workers: c,
            seconds,
            speedup,
            tasks_total: engine.tasks_total,
            tasks_stolen: engine.tasks_stolen,
            states_explored: report.stats.states_explored(),
        });
    }
    rows.push(Row::new("json").col(
        "data",
        serde_json::to_string(&points).expect("sweep points serialize"),
    ));
    FigureResult {
        id: "cores".into(),
        caption: "Engine cores-scaling sweep on the K=4 fat tree".into(),
        rows,
    }
}

/// One measured point of the incremental-explorer benchmark, serialized as
/// JSON (`BENCH_checker.json`) so the single-core steps/sec trajectory can
/// be tracked across commits.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct CheckerBenchPoint {
    /// Workload label.
    pub scenario: String,
    /// RPVP steps applied during the verification (identical across the two
    /// explorers — a sanity check that they explore the same tree).
    pub steps: u64,
    /// Wall-clock seconds with the pre-incremental reference explorer.
    pub reference_seconds: f64,
    /// Wall-clock seconds with the incremental explorer.
    pub incremental_seconds: f64,
    /// Steps per second through the reference explorer.
    pub reference_steps_per_sec: f64,
    /// Steps per second through the incremental explorer.
    pub incremental_steps_per_sec: f64,
    /// `incremental_steps_per_sec / reference_steps_per_sec`.
    pub speedup: f64,
    /// Enabled-status recomputations the delta maintenance performed
    /// (the reference recomputes every node at every step).
    pub enabled_recomputed_nodes: u64,
    /// Deepest apply/undo stack reached.
    pub undo_depth_max: u64,
}

/// Time `reps` identical verifications through both explorers (best of
/// `iterations` batches, so the wall clock is well above timer noise even on
/// small workloads), assert the two searches did identical work, and append
/// a printed row plus a JSON point.
#[allow(clippy::too_many_arguments)]
fn checker_measure(
    iterations: usize,
    label: String,
    reps: usize,
    plankton: &Plankton,
    policy: &dyn plankton_policy::Policy,
    scenario: &FailureScenario,
    options: &PlanktonOptions,
    rows: &mut Vec<Row>,
    points: &mut Vec<CheckerBenchPoint>,
) {
    let timed_best = |options: &PlanktonOptions| {
        let mut best: Option<(Duration, _)> = None;
        for _ in 0..iterations {
            let (report, elapsed) = time(|| {
                let mut last = None;
                for _ in 0..reps {
                    last = Some(plankton.verify(policy, scenario, options));
                }
                last.expect("at least one rep")
            });
            if best.as_ref().map(|(t, _)| elapsed < *t).unwrap_or(true) {
                best = Some((elapsed, report));
            }
        }
        best.expect("at least one iteration")
    };
    let (ref_time, ref_report) = timed_best(&options.clone().with_reference_explorer());
    let (inc_time, inc_report) = timed_best(options);
    assert_eq!(
        inc_report.stats.without_incremental_counters(),
        ref_report.stats,
        "the two explorers must do identical search work on {label}"
    );
    let steps = inc_report.stats.steps * reps as u64;
    let ref_sps = steps as f64 / ref_time.as_secs_f64().max(1e-9);
    let inc_sps = steps as f64 / inc_time.as_secs_f64().max(1e-9);
    let speedup = inc_sps / ref_sps.max(1e-9);
    rows.push(
        Row::new(label.clone())
            .col("steps", steps)
            .col("reference", secs(ref_time))
            .col("incremental", secs(inc_time))
            .col("steps_per_sec", format!("{inc_sps:.0}"))
            .col("speedup", format!("{speedup:.2}x")),
    );
    points.push(CheckerBenchPoint {
        scenario: label,
        steps,
        reference_seconds: ref_time.as_secs_f64(),
        incremental_seconds: inc_time.as_secs_f64(),
        reference_steps_per_sec: ref_sps,
        incremental_steps_per_sec: inc_sps,
        speedup,
        enabled_recomputed_nodes: inc_report.stats.enabled_recomputed_nodes,
        undo_depth_max: inc_report.stats.undo_depth_max,
    });
}

/// Checker inner-loop benchmark: single-core steps/sec of the incremental
/// explorer vs the pre-incremental reference, on the fat-tree reachability
/// scenario (the acceptance workload) plus a branching-heavy BGP waypoint
/// workload. The last row carries the raw points as JSON.
pub fn checker_bench(quick: bool) -> FigureResult {
    let iterations = if quick { 1 } else { 3 };
    let mut rows = Vec::new();
    let mut points: Vec<CheckerBenchPoint> = Vec::new();
    let mut measure = |label: String,
                       reps: usize,
                       plankton: &Plankton,
                       policy: &dyn plankton_policy::Policy,
                       scenario: &FailureScenario,
                       options: &PlanktonOptions| {
        checker_measure(
            iterations, label, reps, plankton, policy, scenario, options, &mut rows, &mut points,
        )
    };

    // The acceptance workload: single-IP reachability on an OSPF fat tree
    // under every single-link failure. LEC and policy-based pruning are
    // disabled so every scenario runs the protocol to full convergence —
    // the configuration that isolates the checker's inner loop (the pruning
    // optimizations themselves are benchmarked by figure 8).
    let full_search = SearchOptions::all_optimizations().without_policy_pruning();
    let ks: &[usize] = if quick { &[4] } else { &[4, 6] };
    for &k in ks {
        let s = fat_tree_ospf(k, CoreStaticRoutes::None);
        let dest = s.destinations[0];
        let sources = edge_sources(&s.fat_tree);
        let plankton = Plankton::new(s.network.clone());
        measure(
            format!("fat tree k={k} reachability, ≤1 failure, full convergence"),
            if quick { 3 } else { 10 },
            &plankton,
            &Reachability::new(sources),
            &FailureScenario::up_to(1),
            &PlanktonOptions::with_cores(1)
                .restricted_to(vec![dest])
                .collect_all_violations()
                .without_lec_pruning()
                .with_search(full_search.clone()),
        );
    }

    // A branching-heavy workload: BGP age-based tie-breaking exercises the
    // apply/undo path at branch points and handle-native visited checks.
    let s = fat_tree_bgp_rfc7938(4, 2);
    let (src, dst) = s.monitored_edges;
    let dst_prefix = s.fat_tree.prefix_of_edge(dst).expect("edge prefix");
    let policy = Waypoint::new(vec![src], s.waypoints.clone());
    let plankton = Plankton::new(s.network.clone());
    measure(
        "fat tree k=4 BGP waypoint".to_string(),
        if quick { 5 } else { 20 },
        &plankton,
        &policy,
        &FailureScenario::no_failures(),
        &PlanktonOptions::with_cores(1)
            .restricted_to(vec![dst_prefix])
            .collect_all_violations(),
    );

    rows.push(Row::new("json").col(
        "data",
        serde_json::to_string(&points).expect("bench points serialize"),
    ));
    FigureResult {
        id: "checker".into(),
        caption: "Incremental vs reference explorer: single-core steps/sec".into(),
        rows,
    }
}

/// AS-scale checker benchmark tier (`BENCH_checker_scale.json`): the same
/// single-core incremental-vs-reference comparison as figure `checker`, on
/// workloads past the paper's largest measured AS — a k=8 fat tree (80
/// switches) and synthetic ISPs up to 1000 routers. The reference explorer
/// recomputes every node's enabled status per step, so its cost grows
/// quadratically with network size; this tier tracks how far the
/// delta-maintained inner loop pulls ahead at scale. Quick mode shrinks the
/// failure set and the ISP so the CI smoke stays fast.
pub fn checker_scale_bench(quick: bool) -> FigureResult {
    let iterations = if quick { 1 } else { 2 };
    let mut rows = Vec::new();
    let mut points: Vec<CheckerBenchPoint> = Vec::new();
    let mut measure = |label: String,
                       reps: usize,
                       plankton: &Plankton,
                       policy: &dyn plankton_policy::Policy,
                       scenario: &FailureScenario,
                       options: &PlanktonOptions| {
        checker_measure(
            iterations, label, reps, plankton, policy, scenario, options, &mut rows, &mut points,
        )
    };
    let full_search = SearchOptions::all_optimizations().without_policy_pruning();

    // k=8 fat tree (80 switches, 256 links): full mode runs every
    // single-link failure to full convergence, quick mode only the
    // failure-free run.
    {
        let s = fat_tree_ospf(8, CoreStaticRoutes::None);
        let dest = s.destinations[0];
        let sources = edge_sources(&s.fat_tree);
        let plankton = Plankton::new(s.network.clone());
        let (scenario, label) = if quick {
            (
                FailureScenario::no_failures(),
                "fat tree k=8 reachability, no failures, full convergence",
            )
        } else {
            (
                FailureScenario::up_to(1),
                "fat tree k=8 reachability, ≤1 failure, full convergence",
            )
        };
        measure(
            label.to_string(),
            2,
            &plankton,
            &Reachability::new(sources),
            &scenario,
            &PlanktonOptions::with_cores(1)
                .restricted_to(vec![dest])
                .collect_all_violations()
                .without_lec_pruning()
                .with_search(full_search.clone()),
        );
    }

    // Synthetic ISPs: all-node reachability to one customer prefix, run to
    // full convergence. The paper's largest measured AS has 315 routers;
    // this tier goes to 1000.
    let routers: &[usize] = if quick { &[250] } else { &[500, 1000] };
    for &n in routers {
        let s = isp_ospf(&AsTopologySpec::scale(n));
        let sources: Vec<NodeId> = s.network.topology.node_ids().collect();
        let plankton = Plankton::new(s.network.clone());
        measure(
            format!("{} all-node reachability, full convergence", s.as_topology.name),
            1,
            &plankton,
            &Reachability::new(sources),
            &FailureScenario::no_failures(),
            &PlanktonOptions::with_cores(1)
                .restricted_to(vec![s.destinations[0]])
                .collect_all_violations()
                .without_lec_pruning()
                .with_search(full_search.clone()),
        );
    }

    rows.push(Row::new("json").col(
        "data",
        serde_json::to_string(&points).expect("bench points serialize"),
    ));
    FigureResult {
        id: "checker_scale".into(),
        caption: "AS-scale checker tier: incremental vs reference steps/sec".into(),
        rows,
    }
}

/// One measured point of the incremental-service benchmark, serialized as
/// JSON (`BENCH_service.json`): wall-clock and step counts for a delta
/// re-verification against a from-scratch re-verification of the same
/// post-delta network.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct ServiceBenchPoint {
    /// Workload label.
    pub scenario: String,
    /// The delta kind applied between the runs.
    pub delta: String,
    /// PECs whose verdict the request needs.
    pub pecs_checked: usize,
    /// PECs the incremental run re-explored.
    pub pecs_reexplored: usize,
    /// PECs served entirely from the cache.
    pub pecs_cached: usize,
    /// (component × failure-set) tasks resubmitted.
    pub tasks_rerun: usize,
    /// Tasks served from the cache.
    pub tasks_cached: usize,
    /// RPVP steps re-executed by the incremental run.
    pub steps_reexplored: u64,
    /// RPVP steps served from the cache.
    pub steps_cached: u64,
    /// Wall-clock seconds for a from-scratch re-verification (PEC
    /// computation + full verify of the post-delta network).
    pub full_seconds: f64,
    /// Wall-clock seconds for the incremental path (delta application +
    /// invalidation + partial resubmission + report merge).
    pub incremental_seconds: f64,
    /// `full_seconds / incremental_seconds`.
    pub speedup: f64,
    /// Did the two reports match exactly (modulo engine pool stats)?
    pub identical: bool,
    /// Streaming ingestion rate (`update_storm` only; 0 elsewhere).
    #[serde(default)]
    pub deltas_per_sec: f64,
    /// Median enqueue→verified lag, milliseconds (`update_storm` only).
    #[serde(default)]
    pub lag_p50_ms: f64,
    /// 99th-percentile enqueue→verified lag, milliseconds (`update_storm`
    /// only).
    #[serde(default)]
    pub lag_p99_ms: f64,
    /// Deltas coalesced away by the streaming queue (`update_storm` only).
    #[serde(default)]
    pub coalesced: u64,
}

/// Incremental-service benchmark: apply a small config delta to a fat-tree
/// workload and compare the service's delta re-verification against
/// re-running Plankton from scratch on the post-delta network. The last row
/// carries the raw points as JSON (`BENCH_service.json`).
pub fn service_bench(quick: bool) -> FigureResult {
    use plankton_config::static_routes::StaticRoute;
    use plankton_config::ConfigDelta;
    use plankton_core::{IncrementalRunStats, IncrementalVerifier};

    let k = if quick { 4 } else { 6 };
    let iterations = if quick { 1 } else { 3 };
    let s = fat_tree_ospf(k, CoreStaticRoutes::MatchingOspf);
    let policy = LoopFreedom::everywhere();
    let options = PlanktonOptions::default().collect_all_violations();

    let mut rows = Vec::new();
    let mut points: Vec<ServiceBenchPoint> = Vec::new();
    let mut measure = |label: &str,
                       delta: ConfigDelta,
                       warm_scenario: &FailureScenario,
                       reverify_scenario: &FailureScenario| {
        // Warm the session cache with the pre-delta verification, then time
        // the operator-visible latency: delta application + incremental
        // re-verification. Best-of-`iterations` with a fresh warmed session
        // per attempt — both sides of the speedup ratio are sub-5ms wall
        // clocks, so a single sample is scheduler-noise-bound and would make
        // the CI regression gate flaky.
        let mut inc_best: Option<(Duration, _, _)> = None;
        for _ in 0..iterations {
            let session = IncrementalVerifier::new(s.network.clone());
            session.verify(&policy, 1, warm_scenario, &options);
            let ((report, run), inc_time) = time(|| {
                session.apply_delta(&delta).expect("delta applies");
                session.verify(&policy, 1, reverify_scenario, &options)
            });
            if inc_best
                .as_ref()
                .map(|(t, _, _)| inc_time < *t)
                .unwrap_or(true)
            {
                inc_best = Some((inc_time, report, run));
            }
        }
        let (inc_time, report, run) = inc_best.expect("at least one iteration");
        // The from-scratch baseline pays what a non-incremental deployment
        // pays per change: PEC computation plus a full verification.
        let mut post_network = s.network.clone();
        delta.apply(&mut post_network).expect("delta applies");
        let mut full_best: Option<(Duration, _)> = None;
        for _ in 0..iterations {
            let (full_report, full_time) = time(|| {
                let plankton = Plankton::new(post_network.clone());
                plankton.verify(&policy, reverify_scenario, &options)
            });
            if full_best
                .as_ref()
                .map(|(t, _)| full_time < *t)
                .unwrap_or(true)
            {
                full_best = Some((full_time, full_report));
            }
        }
        let (full_time, full_report) = full_best.expect("at least one iteration");
        let identical = report.normalized_json() == full_report.normalized_json();
        assert!(identical, "incremental and from-scratch reports must match");
        let speedup = full_time.as_secs_f64() / inc_time.as_secs_f64().max(1e-9);
        rows.push(
            Row::new(format!("K={k} {label}"))
                .col("full", secs(full_time))
                .col("incremental", secs(inc_time))
                .col("speedup", format!("{speedup:.1}x"))
                .col(
                    "pecs_rerun",
                    format!("{}/{}", run.pecs_reexplored, run.pecs_checked),
                )
                .col("steps_cached", run.steps_cached),
        );
        points.push(ServiceBenchPoint {
            scenario: format!("fat tree k={k} loop freedom"),
            delta: label.to_string(),
            pecs_checked: run.pecs_checked,
            pecs_reexplored: run.pecs_reexplored,
            pecs_cached: run.pecs_cached,
            tasks_rerun: run.tasks_rerun,
            tasks_cached: run.tasks_cached,
            steps_reexplored: run.steps_reexplored,
            steps_cached: run.steps_cached,
            full_seconds: full_time.as_secs_f64(),
            incremental_seconds: inc_time.as_secs_f64(),
            speedup,
            identical,
            deltas_per_sec: 0.0,
            lag_p50_ms: 0.0,
            lag_p99_ms: 0.0,
            coalesced: 0,
        });
    };

    // A one-prefix config edit: only the overlapping PEC re-runs.
    measure(
        "static_route_add",
        ConfigDelta::StaticRouteAdd {
            device: s.fat_tree.aggregation[0][0],
            route: StaticRoute::to_interface(s.destinations[0], s.fat_tree.edge[0][0]),
        },
        &FailureScenario::no_failures(),
        &FailureScenario::no_failures(),
    );
    // An edge-local OSPF cost edit — the aggregation-side cost of one edge
    // link. Competitive only for the prefix originated at that edge switch:
    // scoped slices keep every other OSPF PEC's cache entry alive.
    let agg = s.fat_tree.aggregation[0][0];
    let edge_link = s
        .network
        .topology
        .link_between(agg, s.fat_tree.edge[0][0])
        .expect("edge link");
    measure(
        "ospf_cost_edge_local",
        ConfigDelta::OspfCostChange {
            device: agg,
            link: edge_link,
            cost: 42,
        },
        &FailureScenario::no_failures(),
        &FailureScenario::no_failures(),
    );
    // A spine-central OSPF cost edit — the same aggregation switch's uplink
    // towards a core. That cost sits on the shortest paths of every remote
    // pod's prefix, so most OSPF PECs honestly re-run (~1×); the CI gate
    // allowlists this scenario.
    let core_link = s
        .network
        .topology
        .neighbors(agg)
        .iter()
        .find(|(n, _)| s.fat_tree.core.contains(n))
        .map(|&(_, l)| l)
        .expect("aggregation uplink");
    measure(
        "ospf_cost_spine_central",
        ConfigDelta::OspfCostChange {
            device: agg,
            link: core_link,
            cost: 42,
        },
        &FailureScenario::no_failures(),
        &FailureScenario::no_failures(),
    );
    // A link failure after a fault-tolerance run: the ≤1-failure exploration
    // pre-paid for the delta's effective failure sets.
    measure(
        "link_down",
        ConfigDelta::LinkDown {
            link: s.network.topology.links()[0].id,
        },
        &FailureScenario::up_to(1),
        &FailureScenario::no_failures(),
    );

    // Daemon restart with a persisted cache: the cold side pays what a cold
    // daemon pays (PEC computation + full verify); the warm side pays the
    // restart path (deserialize the persisted cache into a brand-new session,
    // then a delta-free re-verify that must be served fully from cache).
    {
        let mut inc_best: Option<(Duration, IncrementalRunStats, _)> = None;
        // The fault-tolerance environment: the workload where restart
        // amortization matters (a cold daemon re-explores every failure set;
        // a warm one re-reads one cache file).
        let warm_scenario = FailureScenario::up_to(1);
        let session = IncrementalVerifier::new(s.network.clone());
        let (cold_report, _) = session.verify(&policy, 1, &warm_scenario, &options);
        let persisted =
            serde_json::to_string(&session.cache().to_snapshot()).expect("cache serializes");
        drop(session);
        for _ in 0..iterations {
            let ((report, run), inc_time) = time(|| {
                let restarted = IncrementalVerifier::new(s.network.clone());
                let snapshot: plankton_core::CacheSnapshot =
                    serde_json::from_str(&persisted).expect("cache snapshot parses");
                restarted
                    .cache()
                    .absorb_snapshot(&snapshot)
                    .expect("scheme version matches");
                restarted.verify(&policy, 1, &warm_scenario, &options)
            });
            assert_eq!(run.tasks_rerun, 0, "warm restart must be fully cached");
            if inc_best
                .as_ref()
                .map(|(t, _, _)| inc_time < *t)
                .unwrap_or(true)
            {
                inc_best = Some((inc_time, run, report));
            }
        }
        let (inc_time, run, report) = inc_best.expect("at least one iteration");
        let mut full_best: Option<Duration> = None;
        for _ in 0..iterations {
            let (full_report, full_time) = time(|| {
                let plankton = Plankton::new(s.network.clone());
                plankton.verify(&policy, &warm_scenario, &options)
            });
            assert_eq!(report.normalized_json(), full_report.normalized_json());
            full_best = Some(full_best.map_or(full_time, |t| t.min(full_time)));
        }
        let full_time = full_best.expect("at least one iteration");
        let identical = report.normalized_json() == cold_report.normalized_json();
        assert!(identical, "warm-restart report must match the cold run");
        let speedup = full_time.as_secs_f64() / inc_time.as_secs_f64().max(1e-9);
        rows.push(
            Row::new(format!("K={k} warm_restart"))
                .col("cold", secs(full_time))
                .col("restarted", secs(inc_time))
                .col("speedup", format!("{speedup:.1}x"))
                .col("tasks_cached", run.tasks_cached)
                .col("steps_cached", run.steps_cached),
        );
        points.push(ServiceBenchPoint {
            scenario: format!("fat tree k={k} loop freedom"),
            delta: "warm_restart".to_string(),
            pecs_checked: run.pecs_checked,
            pecs_reexplored: run.pecs_reexplored,
            pecs_cached: run.pecs_cached,
            tasks_rerun: run.tasks_rerun,
            tasks_cached: run.tasks_cached,
            steps_reexplored: run.steps_reexplored,
            steps_cached: run.steps_cached,
            full_seconds: full_time.as_secs_f64(),
            incremental_seconds: inc_time.as_secs_f64(),
            speedup,
            identical,
            deltas_per_sec: 0.0,
            lag_p50_ms: 0.0,
            lag_p99_ms: 0.0,
            coalesced: 0,
        });
    }

    // Streaming update storm: sustained ingestion rate of the coalescing
    // bounded-lag queue (`ApplyDeltas {ack: "enqueued"}` + background drain)
    // against one-at-a-time replay (`ApplyDelta` + `Verify` per delta) of
    // the same storm to the same verified end state. `speedup` here is the
    // deltas/sec ratio; the lag percentiles come from the drain's
    // enqueue→verified histogram.
    {
        use plankton_core::Tuning;
        use plankton_service::{PolicySpec, Request, Response, ServiceSession, VerifyOptions};
        use std::sync::Arc;

        let ring = ring_ospf(8);
        let count = if quick { 40 } else { 120 };
        // Deterministic xorshift64* storm concentrated on three targets so
        // coalescing has real work: link flaps, OSPF cost churn, static
        // route add/remove.
        let mut state: u64 = 0x5EED_0BEE;
        let mut deltas = Vec::with_capacity(count);
        for _ in 0..count {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let r = state.wrapping_mul(0x2545F4914F6CDD1D);
            let slot = (r >> 8) as usize % 3;
            deltas.push(match r % 5 {
                0 => ConfigDelta::LinkDown {
                    link: ring.ring.links[slot],
                },
                1 => ConfigDelta::LinkUp {
                    link: ring.ring.links[slot],
                },
                2 => ConfigDelta::OspfCostChange {
                    device: ring.ring.routers[slot],
                    link: ring.ring.links[slot],
                    cost: 1 + ((r >> 16) % 100) as u32,
                },
                3 => ConfigDelta::StaticRouteAdd {
                    device: ring.ring.routers[slot],
                    route: StaticRoute::null(ring.destination)
                        .with_distance(1 + ((r >> 16) % 200) as u8),
                },
                _ => ConfigDelta::StaticRouteRemove {
                    device: ring.ring.routers[slot],
                    prefix: ring.destination,
                },
            });
        }
        let verify = Request::Verify {
            policy: PolicySpec::LoopFreedom,
            options: Some(VerifyOptions {
                restrict_prefixes: vec![ring.destination],
                ..VerifyOptions::default()
            }),
        };
        let report_bytes = |session: &ServiceSession| {
            let Response::Report(summary) = session.handle(&verify) else {
                panic!("storm verify failed");
            };
            session
                .last_report(&summary.policy)
                .expect("verified policy stored")
                .normalized_json()
        };

        // One-at-a-time replay: what a non-streaming deployment pays to keep
        // the network continuously verified through the storm. No-op deltas
        // (downing a downed link) answer with an error and change nothing —
        // the streaming path must converge to the same state regardless.
        let sequential = ServiceSession::with_network(ring.network.clone());
        sequential.handle(&verify);
        let replay_start = Instant::now();
        for delta in &deltas {
            let _ = sequential.handle(&Request::ApplyDelta {
                delta: delta.clone(),
            });
            sequential.handle(&verify);
        }
        let replay_time = replay_start.elapsed();
        let replay_bytes = report_bytes(&sequential);

        // Streaming: enqueue-acked bursts, coalesced and verified at
        // bounded lag by the background drain (which re-verifies the
        // registered policy after every batch), then a final flush + verify.
        let streaming = Arc::new(ServiceSession::new().with_tuning(Tuning {
            max_lag_deltas: Some(16),
            max_lag_ms: Some(5),
            ..Tuning::default()
        }));
        streaming.load(ring.network.clone());
        streaming.handle(&verify);
        let drain = streaming.start_streaming();
        let stream_start = Instant::now();
        for burst in deltas.chunks(8) {
            let response = streaming.handle(&Request::ApplyDeltas {
                deltas: burst.to_vec(),
                ack: "enqueued".into(),
            });
            assert!(
                matches!(response, Response::DeltasAccepted { .. }),
                "storm burst refused: {response:?}"
            );
        }
        drain.stop();
        let stream_time = stream_start.elapsed();
        let stream_bytes = report_bytes(&streaming);
        let identical = stream_bytes == replay_bytes;
        assert!(
            identical,
            "coalesced streaming storm diverged from sequential replay"
        );

        let stats = streaming.stats();
        let replay_rate = count as f64 / replay_time.as_secs_f64().max(1e-9);
        let stream_rate = count as f64 / stream_time.as_secs_f64().max(1e-9);
        let speedup = stream_rate / replay_rate;
        rows.push(
            Row::new(format!("ring n=8 update_storm ({count} deltas)"))
                .col("replay", format!("{replay_rate:.0}/s"))
                .col("streaming", format!("{stream_rate:.0}/s"))
                .col("speedup", format!("{speedup:.1}x"))
                .col("coalesced", stats.deltas_coalesced)
                .col("lag_p50_ms", format!("{:.2}", stats.verify_lag_p50_ms))
                .col("lag_p99_ms", format!("{:.2}", stats.verify_lag_p99_ms)),
        );
        points.push(ServiceBenchPoint {
            scenario: "ring n=8 update storm".into(),
            delta: "update_storm".to_string(),
            pecs_checked: 0,
            pecs_reexplored: 0,
            pecs_cached: 0,
            tasks_rerun: 0,
            tasks_cached: 0,
            steps_reexplored: 0,
            steps_cached: 0,
            full_seconds: replay_time.as_secs_f64(),
            incremental_seconds: stream_time.as_secs_f64(),
            speedup,
            identical,
            deltas_per_sec: stream_rate,
            lag_p50_ms: stats.verify_lag_p50_ms,
            lag_p99_ms: stats.verify_lag_p99_ms,
            coalesced: stats.deltas_coalesced,
        });
    }

    rows.push(Row::new("json").col(
        "data",
        serde_json::to_string(&points).expect("bench points serialize"),
    ));
    FigureResult {
        id: "service".into(),
        caption: "Incremental service: delta re-verify vs full re-verify".into(),
        rows,
    }
}

/// Run one figure by id ("2", "7a".."7i", "8", "9", "cores", "checker",
/// "checker_scale", "service").
pub fn run_figure(id: &str, quick: bool) -> Option<FigureResult> {
    let result = match id {
        "2" => fig2(quick),
        "7a" => fig7a(quick),
        "7b" => fig7b(quick),
        "7c" => fig7c(quick),
        "7d" => fig7d(quick),
        "7e" => fig7e(quick),
        "7f" => fig7f(quick),
        "7g" => fig7g(quick),
        "7h" => fig7h(quick),
        "7i" => fig7i(quick),
        "8" => fig8(quick),
        "9" => fig9(quick),
        "cores" => cores_scaling(quick),
        "checker" => checker_bench(quick),
        "checker_scale" => checker_scale_bench(quick),
        "service" => service_bench(quick),
        _ => return None,
    };
    Some(result)
}

/// Every figure id, in paper order (plus the engine scaling sweep, the
/// checker inner-loop benchmark and the incremental-service benchmark).
pub fn all_figures() -> Vec<&'static str> {
    vec![
        "2", "7a", "7b", "7c", "7d", "7e", "7f", "7g", "7h", "7i", "8", "9", "cores", "checker",
        "checker_scale", "service",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fig2_produces_rows() {
        let f = fig2(true);
        assert_eq!(f.id, "2");
        assert!(!f.rows.is_empty());
        assert!(f.render().contains("model_checker"));
    }

    #[test]
    fn quick_fig7a_pass_and_fail_rows() {
        let f = fig7a(true);
        assert_eq!(f.rows.len(), 2);
        assert!(f.rows.iter().any(|r| r.label.contains("Pass")));
        assert!(f.rows.iter().any(|r| r.label.contains("Fail")));
    }

    #[test]
    fn quick_fig8_shows_state_reduction() {
        let f = fig8(true);
        // The unoptimized ring search must explore at least as many states as
        // the optimized one.
        let ring_row = &f.rows[0];
        let get = |name: &str| -> u64 {
            ring_row
                .values
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v.parse().unwrap_or(0))
                .unwrap_or(0)
        };
        assert!(get("no_opts_states") >= get("all_states"));
    }

    #[test]
    fn figure_dispatch_knows_every_id() {
        for id in all_figures() {
            // Only dispatch for the cheap figures in unit tests.
            if ["2"].contains(&id) {
                assert!(run_figure(id, true).is_some());
            }
        }
        assert!(run_figure("nope", true).is_none());
    }

    #[test]
    fn quick_cores_scaling_emits_json() {
        let f = cores_scaling(true);
        assert_eq!(f.id, "cores");
        // 3 worker counts plus the JSON row.
        assert_eq!(f.rows.len(), 4);
        let json_row = f.rows.last().unwrap();
        assert_eq!(json_row.label, "json");
        let data = &json_row.values[0].1;
        let points: Vec<CoresScalingPoint> =
            serde_json::from_str(data).expect("sweep JSON parses back");
        assert_eq!(points.len(), 3);
        assert_eq!(points[0].workers, 1);
        assert!((points[0].speedup - 1.0).abs() < 1e-9);
        // Parallelism must not change the search itself.
        assert!(points.windows(2).all(|w| {
            w[0].states_explored == w[1].states_explored && w[0].tasks_total == w[1].tasks_total
        }));
    }

    #[test]
    fn quick_checker_scale_emits_comparable_points() {
        let f = checker_scale_bench(true);
        assert_eq!(f.id, "checker_scale");
        let json_row = f.rows.last().unwrap();
        assert_eq!(json_row.label, "json");
        let points: Vec<CheckerBenchPoint> =
            serde_json::from_str(&json_row.values[0].1).expect("scale JSON parses back");
        // k=8 fat tree + the quick-mode ISP.
        assert_eq!(points.len(), 2);
        assert!(points.iter().all(|p| p.steps > 0 && p.speedup > 0.0));
        // The JSON must stay parseable by the CI compare gate.
        let entries =
            crate::compare::parse_entries(&json_row.values[0].1).expect("gate parses scale JSON");
        assert_eq!(entries.len(), 2);
    }
}
