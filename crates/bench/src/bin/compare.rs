//! `compare` — the CI bench-regression gate.
//!
//! ```text
//! cargo run --release -p plankton-bench --bin compare -- \
//!     --baseline BENCH_service.json --current bench-out/BENCH_service.json \
//!     --allow ospf_cost_spine_central
//! ```
//!
//! Exits non-zero when any scenario's speedup falls below
//! `baseline × min-ratio` (default 0.7), when any `identical` field is
//! `false`, or when a baseline scenario is missing from the current run.
//! `--allow LABEL` exempts honest-~1× scenarios (substring match) from the
//! speedup gate only.

use plankton_bench::compare::{compare, parse_entries};

fn usage() -> ! {
    eprintln!(
        "usage: compare --baseline <file.json> --current <file.json> \
         [--min-ratio <r>] [--allow <label>]..."
    );
    std::process::exit(2);
}

fn read_entries(path: &str) -> Vec<plankton_bench::Entry> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("compare: cannot read {path}: {e}");
        std::process::exit(2);
    });
    parse_entries(&text).unwrap_or_else(|e| {
        eprintln!("compare: cannot parse {path}: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline: Option<String> = None;
    let mut current: Option<String> = None;
    let mut min_ratio = 0.7f64;
    let mut allow: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = || iter.next().cloned().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--baseline" => baseline = Some(value()),
            "--current" => current = Some(value()),
            "--min-ratio" => {
                min_ratio = value().parse().unwrap_or_else(|_| usage());
            }
            "--allow" => allow.push(value()),
            _ => usage(),
        }
    }
    let (Some(baseline), Some(current)) = (baseline, current) else {
        usage();
    };

    let base_entries = read_entries(&baseline);
    let cur_entries = read_entries(&current);
    let outcome = compare(&base_entries, &cur_entries, min_ratio, &allow);
    for line in &outcome.checked {
        println!("ok   {line}");
    }
    for line in &outcome.failures {
        println!("FAIL {line}");
    }
    if !outcome.passed() {
        eprintln!(
            "compare: {} regression(s) against {baseline}",
            outcome.failures.len()
        );
        std::process::exit(1);
    }
    println!(
        "compare: {} scenario(s) checked against {baseline}, no regressions",
        outcome.checked.len()
    );
}
