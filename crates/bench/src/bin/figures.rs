//! Regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p plankton-bench --bin figures -- --all --quick
//! cargo run --release -p plankton-bench --bin figures -- --fig 7a
//! ```
//!
//! `--quick` scales every experiment down (small fat trees, a subset of the
//! AS topologies) so the whole sweep finishes in minutes; without it the
//! harness uses the larger parameters documented in EXPERIMENTS.md.

use plankton_bench::{all_figures, run_figure};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut requested: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        if a == "--fig" {
            if let Some(f) = iter.next() {
                requested.push(f.clone());
            }
        }
    }
    if requested.is_empty() || args.iter().any(|a| a == "--all") {
        requested = all_figures().into_iter().map(String::from).collect();
    }

    for id in &requested {
        match run_figure(id, quick) {
            Some(result) => {
                println!("{}", result.render());
            }
            None => {
                eprintln!("unknown figure id {id}; known: {:?}", all_figures());
                std::process::exit(1);
            }
        }
    }
}
