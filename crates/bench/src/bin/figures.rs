//! Regenerate the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p plankton-bench --bin figures -- --all --quick
//! cargo run --release -p plankton-bench --bin figures -- --fig 7a
//! cargo run --release -p plankton-bench --bin figures -- --fig checker --out-dir .
//! ```
//!
//! `--quick` scales every experiment down (small fat trees, a subset of the
//! AS topologies) so the whole sweep finishes in minutes; without it the
//! harness uses the larger parameters documented in EXPERIMENTS.md.
//!
//! `--out-dir DIR` additionally writes each figure's machine-readable data
//! (the contents of its `json` row, where one exists) to
//! `DIR/BENCH_<id>.json`, so CI can archive benchmark trajectories.

use plankton_bench::{all_figures, run_figure, FigureResult};
use std::path::Path;

fn write_json(out_dir: &Path, result: &FigureResult) {
    let Some(row) = result.rows.iter().find(|r| r.label == "json") else {
        return;
    };
    let Some((_, data)) = row.values.first() else {
        return;
    };
    std::fs::create_dir_all(out_dir).expect("create --out-dir");
    let path = out_dir.join(format!("BENCH_{}.json", result.id));
    std::fs::write(&path, data).expect("write benchmark JSON");
    eprintln!("wrote {}", path.display());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut requested: Vec<String> = Vec::new();
    let mut out_dir: Option<String> = None;
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        if a == "--fig" {
            if let Some(f) = iter.next() {
                requested.push(f.clone());
            }
        } else if a == "--out-dir" {
            out_dir = iter.next().cloned();
        }
    }
    if requested.is_empty() || args.iter().any(|a| a == "--all") {
        requested = all_figures().into_iter().map(String::from).collect();
    }

    for id in &requested {
        match run_figure(id, quick) {
            Some(result) => {
                println!("{}", result.render());
                if let Some(dir) = &out_dir {
                    write_json(Path::new(dir), &result);
                }
            }
            None => {
                eprintln!("unknown figure id {id}; known: {:?}", all_figures());
                std::process::exit(1);
            }
        }
    }
}
