//! The CI bench-regression gate: diff a freshly measured benchmark JSON
//! against the committed baseline and fail loudly when performance or
//! correctness regressed.
//!
//! Two regression classes are gated:
//!
//! * **Speedup regressions** — a scenario whose measured `speedup` falls
//!   below `baseline × min_ratio` (default 0.7; speedups are ratios of two
//!   wall clocks on the same machine, so they transfer across runner
//!   hardware far better than absolute seconds). Scenarios that honestly
//!   measure ~1× (a spine-central OSPF cost change re-runs most OSPF PECs
//!   by design) are exempted through an explicit allowlist — their noise
//!   band straddles 1.0 and a ratio gate on them would only flake.
//! * **Correctness flips** — any point whose `identical` field is `false`:
//!   the incremental report diverged from the from-scratch oracle, which is
//!   a cache-invalidation bug no matter how fast it was.
//!
//! A scenario present in the baseline but missing from the current run also
//! fails the gate: silently dropping a measurement reads as "still fast".

use crate::figures::{CheckerBenchPoint, ServiceBenchPoint};

/// One comparable benchmark entry, shape-erased from the per-figure point
/// types.
#[derive(Clone, Debug)]
pub struct Entry {
    /// Stable label used to match baseline and current points.
    pub label: String,
    /// The measured speedup.
    pub speedup: f64,
    /// The correctness bit, where the figure records one.
    pub identical: Option<bool>,
}

/// Parse a benchmark JSON file (either the service or the checker shape)
/// into comparable entries.
pub fn parse_entries(json: &str) -> Result<Vec<Entry>, String> {
    if let Ok(points) = serde_json::from_str::<Vec<ServiceBenchPoint>>(json) {
        return Ok(points
            .iter()
            .map(|p| Entry {
                label: format!("{} / {}", p.scenario, p.delta),
                speedup: p.speedup,
                identical: Some(p.identical),
            })
            .collect());
    }
    if let Ok(points) = serde_json::from_str::<Vec<CheckerBenchPoint>>(json) {
        return Ok(points
            .iter()
            .map(|p| Entry {
                label: p.scenario.clone(),
                speedup: p.speedup,
                identical: None,
            })
            .collect());
    }
    Err("unrecognized benchmark JSON shape (neither service nor checker points)".into())
}

/// The gate's verdict: every check performed plus every failure found.
#[derive(Clone, Debug, Default)]
pub struct GateOutcome {
    /// Human-readable lines for checks that passed.
    pub checked: Vec<String>,
    /// Human-readable failure lines; non-empty means the gate fails.
    pub failures: Vec<String>,
}

impl GateOutcome {
    /// Did the gate pass?
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Compare `current` against `baseline`. `min_ratio` is the fraction of the
/// baseline speedup a scenario must retain; `allow_honest` entries exempt
/// scenarios (by substring match on the label) from the speedup gate —
/// never from the `identical` gate.
pub fn compare(
    baseline: &[Entry],
    current: &[Entry],
    min_ratio: f64,
    allow_honest: &[String],
) -> GateOutcome {
    let mut outcome = GateOutcome::default();
    let exempted = |label: &str| -> bool { allow_honest.iter().any(|allow| label.contains(allow)) };

    // Correctness first: a non-identical point fails even if the scenario is
    // new or allowlisted.
    for cur in current {
        if cur.identical == Some(false) {
            outcome.failures.push(format!(
                "{}: identical=false — incremental result diverged from the from-scratch oracle",
                cur.label
            ));
        }
    }

    for base in baseline {
        let Some(cur) = current.iter().find(|c| c.label == base.label) else {
            outcome.failures.push(format!(
                "{}: present in the baseline but missing from the current run",
                base.label
            ));
            continue;
        };
        if exempted(&base.label) {
            outcome.checked.push(format!(
                "{}: speedup {:.2}x (honest-1x allowlisted, ratio gate skipped)",
                cur.label, cur.speedup
            ));
            continue;
        }
        let floor = base.speedup * min_ratio;
        if cur.speedup < floor {
            outcome.failures.push(format!(
                "{}: speedup {:.2}x fell below {:.2}x (baseline {:.2}x × {min_ratio})",
                cur.label, cur.speedup, floor, base.speedup
            ));
        } else {
            outcome.checked.push(format!(
                "{}: speedup {:.2}x ≥ {:.2}x floor (baseline {:.2}x)",
                cur.label, cur.speedup, floor, base.speedup
            ));
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(label: &str, speedup: f64, identical: Option<bool>) -> Entry {
        Entry {
            label: label.into(),
            speedup,
            identical,
        }
    }

    #[test]
    fn matching_run_passes() {
        let base = vec![entry("a / x", 5.0, Some(true)), entry("b", 2.8, None)];
        let cur = vec![entry("a / x", 4.6, Some(true)), entry("b", 2.2, None)];
        let out = compare(&base, &cur, 0.7, &[]);
        assert!(out.passed(), "{:?}", out.failures);
        assert_eq!(out.checked.len(), 2);
    }

    #[test]
    fn doctored_speedup_regression_fails() {
        let base = vec![entry("a / x", 5.0, Some(true))];
        let cur = vec![entry("a / x", 3.0, Some(true))];
        let out = compare(&base, &cur, 0.7, &[]);
        assert!(!out.passed());
        assert!(out.failures[0].contains("fell below"));
    }

    #[test]
    fn identical_false_fails_even_when_allowlisted() {
        let base = vec![entry("honest / spine", 1.0, Some(true))];
        let cur = vec![entry("honest / spine", 1.0, Some(false))];
        let out = compare(&base, &cur, 0.7, &["spine".into()]);
        assert!(!out.passed());
        assert!(out.failures[0].contains("identical=false"));
    }

    #[test]
    fn allowlist_exempts_honest_scenarios_from_the_ratio_gate() {
        let base = vec![entry("k6 / ospf_cost_spine_central", 1.1, Some(true))];
        let cur = vec![entry("k6 / ospf_cost_spine_central", 0.6, Some(true))];
        let out = compare(&base, &cur, 0.7, &["ospf_cost_spine_central".into()]);
        assert!(out.passed(), "{:?}", out.failures);
    }

    #[test]
    fn missing_scenario_fails() {
        let base = vec![entry("a / x", 5.0, Some(true))];
        let out = compare(&base, &[], 0.7, &[]);
        assert!(!out.passed());
        assert!(out.failures[0].contains("missing"));
    }

    #[test]
    fn new_scenarios_in_current_are_tolerated() {
        let base = vec![entry("a / x", 5.0, Some(true))];
        let cur = vec![
            entry("a / x", 5.0, Some(true)),
            entry("new", 1.0, Some(true)),
        ];
        assert!(compare(&base, &cur, 0.7, &[]).passed());
    }

    #[test]
    fn json_shapes_round_trip() {
        let service = r#"[{"scenario":"fat tree k=6 loop freedom","delta":"static_route_add",
            "pecs_checked":63,"pecs_reexplored":1,"pecs_cached":62,"tasks_rerun":1,
            "tasks_cached":62,"steps_reexplored":10,"steps_cached":100,
            "full_seconds":1.0,"incremental_seconds":0.2,"speedup":5.0,"identical":true}]"#;
        let entries = parse_entries(service).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(
            entries[0].label,
            "fat tree k=6 loop freedom / static_route_add"
        );
        assert_eq!(entries[0].identical, Some(true));

        let checker = r#"[{"scenario":"fat tree k=6 reachability","steps":100,
            "reference_seconds":1.0,"incremental_seconds":0.4,
            "reference_steps_per_sec":100.0,"incremental_steps_per_sec":250.0,
            "speedup":2.5,"enabled_recomputed_nodes":7,"undo_depth_max":3}]"#;
        let entries = parse_entries(checker).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].identical, None);

        assert!(parse_entries("[{\"nope\":1}]").is_err());
    }
}
