//! # plankton-baselines
//!
//! The comparison systems used by the paper's evaluation, reimplemented so
//! that every figure can be regenerated without proprietary tooling:
//!
//! * [`csp`] — a small finite-domain constraint solver, standing in for the
//!   general-purpose SMT solving that Minesweeper delegates to Z3. Used both
//!   for the Figure 2 shortest-path micro-comparison and as the engine of the
//!   Minesweeper-style baseline.
//! * [`minesweeper`] — a Minesweeper-style monolithic configuration verifier:
//!   the converged state of *every* destination prefix (plus, for iBGP, the
//!   loopback prefixes — the paper's "n+1 copies of the network") is encoded
//!   as one constraint problem and solved by general-purpose search.
//! * [`arc`] — an ARC-style graph baseline: all-to-all reachability under at
//!   most `k` link failures for shortest-path routing, answered per
//!   source/destination pair with edge-disjoint-path (max-flow) computations.
//! * [`bonsai`] — Bonsai-style control-plane compression: device equivalence
//!   classes collapse a symmetric network into a smaller quotient network
//!   that any configuration verifier can then analyze.

pub mod arc;
pub mod bonsai;
pub mod csp;
pub mod minesweeper;

pub use arc::ArcBaseline;
pub use bonsai::{compress, CompressedNetwork};
pub use csp::{CspProblem, CspSolution, CspStats};
pub use minesweeper::MinesweeperStyle;
