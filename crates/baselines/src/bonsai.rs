//! Bonsai-style control-plane compression (Beckett et al., SIGCOMM 2018).
//!
//! Bonsai collapses devices with equivalent configuration-and-neighborhood
//! roles into abstract nodes, producing a smaller network whose verification
//! results transfer back to the original (for policies and environments the
//! abstraction preserves — notably *not* link failures). Plankton both
//! integrates with Bonsai as a preprocessor (Figure 7(f)) and borrows its
//! device-equivalence idea for failure-choice pruning (§4.3, implemented in
//! `plankton-core::failures`).
//!
//! This implementation targets the OSPF networks used in the paper's Bonsai
//! experiments (symmetric fat trees): devices are grouped with the same
//! iterative refinement used for failure pruning, and a quotient network is
//! built with one representative device per class.

use plankton_config::{DeviceConfig, Network, OspfConfig};
use plankton_core::DeviceEquivalence;
use plankton_net::topology::{NodeId, TopologyBuilder};
use std::collections::BTreeMap;

/// A compressed (quotient) network plus the mapping back to the original.
#[derive(Clone, Debug)]
pub struct CompressedNetwork {
    /// The quotient network (one device per equivalence class).
    pub network: Network,
    /// `class_of[n]` = the quotient node representing original device `n`.
    pub class_of: Vec<NodeId>,
    /// The original representative of each quotient node.
    pub representative: Vec<NodeId>,
}

impl CompressedNetwork {
    /// Compression ratio (original devices per abstract device).
    pub fn ratio(&self) -> f64 {
        self.class_of.len() as f64 / self.representative.len() as f64
    }

    /// The quotient node standing for an original device.
    pub fn abstract_node(&self, original: NodeId) -> NodeId {
        self.class_of[original.index()]
    }
}

/// Compress an OSPF network. `interesting` devices (policy sources,
/// waypoints, origins of the checked prefixes) are kept in singleton classes
/// so that the policy can be restated on the quotient network.
pub fn compress(network: &Network, interesting: &[NodeId]) -> CompressedNetwork {
    let eq = DeviceEquivalence::compute(network, interesting);
    let topo = &network.topology;

    // One quotient node per class, using the lowest-id member as its
    // representative.
    let mut members: BTreeMap<usize, Vec<NodeId>> = BTreeMap::new();
    for n in topo.node_ids() {
        members.entry(eq.class_of(n)).or_default().push(n);
    }
    let mut builder = TopologyBuilder::new();
    let mut quotient_of_class: BTreeMap<usize, NodeId> = BTreeMap::new();
    let mut representative = Vec::new();
    for (class, nodes) in &members {
        let rep = nodes[0];
        let q = builder.add_router(&format!("class{class}-{}", topo.node(rep).name));
        if let Some(lb) = topo.node(rep).loopback {
            builder.set_loopback(q, lb);
        }
        quotient_of_class.insert(*class, q);
        representative.push(rep);
    }
    let class_of: Vec<NodeId> = topo
        .node_ids()
        .map(|n| quotient_of_class[&eq.class_of(n)])
        .collect();

    // One quotient link per unordered pair of adjacent classes, weighted by
    // the representative's cost on an original member link.
    let mut link_cost: BTreeMap<(NodeId, NodeId), (u32, u32)> = BTreeMap::new();
    for link in topo.links() {
        let (a, b) = link.endpoints();
        let (qa, qb) = (class_of[a.index()], class_of[b.index()]);
        if qa == qb {
            continue;
        }
        let key = (qa.min(qb), qa.max(qb));
        let cost_a = network
            .device(a)
            .ospf
            .as_ref()
            .and_then(|o| o.cost(link.id))
            .unwrap_or(10);
        let cost_b = network
            .device(b)
            .ospf
            .as_ref()
            .and_then(|o| o.cost(link.id))
            .unwrap_or(10);
        let ordered = if qa <= qb {
            (cost_a, cost_b)
        } else {
            (cost_b, cost_a)
        };
        link_cost.entry(key).or_insert(ordered);
    }
    let mut quotient_links = Vec::new();
    for (&(qa, qb), &(ca, cb)) in &link_cost {
        let l = builder.add_link(qa, qb);
        quotient_links.push((l, qa, qb, ca, cb));
    }
    let quotient_topo = builder.build();

    // Quotient configuration: the representative's OSPF process with costs
    // remapped to the quotient links, and its originated prefixes.
    let mut quotient = Network::unconfigured(quotient_topo);
    for (class, nodes) in &members {
        let rep = nodes[0];
        let q = quotient_of_class[class];
        if let Some(orig_ospf) = &network.device(rep).ospf {
            let mut ospf = OspfConfig::originating(orig_ospf.networks.clone());
            for &(l, qa, qb, ca, cb) in &quotient_links {
                if qa == q {
                    ospf = ospf.with_cost(l, ca);
                } else if qb == q {
                    ospf = ospf.with_cost(l, cb);
                }
            }
            *quotient.device_mut(q) = DeviceConfig::empty().with_ospf(ospf);
        }
    }

    CompressedNetwork {
        network: quotient,
        class_of,
        representative,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plankton_config::scenarios::{fat_tree_ospf, CoreStaticRoutes};
    use plankton_core::{Plankton, PlanktonOptions};
    use plankton_net::failure::FailureScenario;
    use plankton_policy::Reachability;

    #[test]
    fn fat_tree_compresses_substantially() {
        let s = fat_tree_ospf(4, CoreStaticRoutes::None);
        let origin = s.fat_tree.edge[0][0];
        let compressed = compress(&s.network, &[origin]);
        assert!(compressed.network.node_count() < s.network.node_count());
        assert!(compressed.ratio() > 1.5);
        assert!(compressed.network.validate().is_empty());
        assert!(compressed.network.topology.is_connected());
    }

    #[test]
    fn reachability_is_preserved_on_the_quotient() {
        let s = fat_tree_ospf(4, CoreStaticRoutes::None);
        let origin = s.fat_tree.edge[0][0];
        let prefix = s.fat_tree.prefix_of_edge(origin).unwrap();
        // Keep the origin and one far-away edge switch concrete.
        let probe = s.fat_tree.edge[3][1];
        let compressed = compress(&s.network, &[origin, probe]);

        // Verify reachability of the prefix from the probe on the quotient.
        let plankton = Plankton::new(compressed.network.clone());
        let report = plankton.verify(
            &Reachability::new(vec![compressed.abstract_node(probe)]),
            &FailureScenario::no_failures(),
            &PlanktonOptions::default().restricted_to(vec![prefix]),
        );
        assert!(report.holds(), "{report}");

        // And it agrees with the original network.
        let original = Plankton::new(s.network.clone());
        let report = original.verify(
            &Reachability::new(vec![probe]),
            &FailureScenario::no_failures(),
            &PlanktonOptions::default().restricted_to(vec![prefix]),
        );
        assert!(report.holds(), "{report}");
    }

    #[test]
    fn interesting_nodes_stay_singleton_in_quotient() {
        let s = fat_tree_ospf(4, CoreStaticRoutes::None);
        let origin = s.fat_tree.edge[0][0];
        let compressed = compress(&s.network, &[origin]);
        let q = compressed.abstract_node(origin);
        // No other original device maps to the origin's quotient node.
        let mapped: Vec<_> = s
            .network
            .topology
            .node_ids()
            .filter(|n| compressed.abstract_node(*n) == q)
            .collect();
        assert_eq!(mapped, vec![origin]);
    }
}
