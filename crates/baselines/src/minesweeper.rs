//! A Minesweeper-style baseline verifier.
//!
//! Minesweeper encodes the *converged state* of the whole network — every
//! destination prefix at once, plus one extra copy of the problem per router
//! when iBGP makes prefixes depend on loopback reachability — as a monolithic
//! constraint problem handed to a general-purpose solver. This baseline
//! reproduces that architecture on top of the [`crate::csp`] solver for
//! shortest-path (OSPF) networks: one distance variable per (prefix, node),
//! stability constraints tying each node to its neighbors, and a single
//! search over the whole encoding. It has none of Plankton's equivalence
//! partitioning, scheduling or partial-order reduction, which is exactly why
//! its cost grows so much faster with network size (Figures 7(a), 7(e),
//! 7(f)).

use crate::csp::{CspProblem, CspStats};
use plankton_config::Network;
use plankton_net::ip::Prefix;
use plankton_net::topology::NodeId;

/// A destination to encode: the prefix and the routers originating it.
#[derive(Clone, Debug)]
pub struct Destination {
    /// The destination prefix.
    pub prefix: Prefix,
    /// The routers originating it into the IGP.
    pub origins: Vec<NodeId>,
}

/// The result of a baseline verification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MinesweeperReport {
    /// Did the property hold (and the encoding was solved)?
    pub holds: bool,
    /// Did the solver give up before finishing (time/step budget)?
    pub timed_out: bool,
    /// Pairs `(prefix index, node)` that cannot reach their destination.
    pub unreachable: Vec<(usize, NodeId)>,
    /// Solver statistics.
    pub stats: CspStats,
    /// Number of variables in the monolithic encoding.
    pub variables: usize,
}

/// The Minesweeper-style verifier.
pub struct MinesweeperStyle<'a> {
    network: &'a Network,
    /// Sentinel distance meaning "unreachable".
    unreachable: u64,
}

impl<'a> MinesweeperStyle<'a> {
    /// A baseline verifier over a shortest-path-routed network.
    pub fn new(network: &'a Network) -> Self {
        // Distances are bounded by (max cost) * (node count).
        let unreachable = 64 * network.node_count() as u64 + 1;
        MinesweeperStyle {
            network,
            unreachable,
        }
    }

    /// Build the monolithic encoding for all `destinations` at once. The
    /// iBGP experiments pass the loopback prefixes as additional
    /// destinations, reproducing Minesweeper's n+1-copies blowup.
    pub fn encode(&self, destinations: &[Destination]) -> (CspProblem, Vec<Vec<usize>>) {
        let topo = &self.network.topology;
        let n = topo.node_count();
        let mut csp = CspProblem::new();
        let mut vars = Vec::with_capacity(destinations.len());
        for dest in destinations {
            let dist_vars: Vec<usize> = (0..n)
                .map(|_| csp.add_var((0..=self.unreachable).collect()))
                .collect();
            for node in topo.node_ids() {
                let Some(ospf) = &self.network.device(node).ospf else {
                    csp.assign(dist_vars[node.index()], self.unreachable);
                    continue;
                };
                if dest.origins.contains(&node) {
                    csp.assign(dist_vars[node.index()], 0);
                    continue;
                }
                let neighbors: Vec<(NodeId, u64)> = topo
                    .neighbors(node)
                    .iter()
                    .filter_map(|&(m, link)| {
                        if !self.network.device(m).runs_ospf() {
                            return None;
                        }
                        ospf.cost(link).map(|c| (m, c as u64))
                    })
                    .collect();
                let unreachable = self.unreachable;
                // Upper bounds: never worse than any neighbor allows.
                for &(m, w) in &neighbors {
                    csp.add_constraint(
                        vec![dist_vars[node.index()], dist_vars[m.index()]],
                        move |v| v[0] <= v[1].saturating_add(w).min(unreachable),
                    );
                }
                // Support: the chosen distance is witnessed by a neighbor, or
                // the node is unreachable.
                let weights: Vec<u64> = neighbors.iter().map(|&(_, w)| w).collect();
                let mut cvars = vec![dist_vars[node.index()]];
                cvars.extend(neighbors.iter().map(|&(m, _)| dist_vars[m.index()]));
                csp.add_constraint(cvars, move |v| {
                    v[0] == unreachable
                        || weights
                            .iter()
                            .enumerate()
                            .any(|(i, &w)| v[0] == v[i + 1].saturating_add(w))
                });
            }
            vars.push(dist_vars);
        }
        (csp, vars)
    }

    /// Verify that every node in `sources` can reach every destination, by
    /// solving the monolithic encoding. `max_checks` bounds the solver work.
    pub fn verify_reachability(
        &self,
        destinations: &[Destination],
        sources: &[NodeId],
        max_checks: u64,
    ) -> MinesweeperReport {
        let (csp, vars) = self.encode(destinations);
        let variables = csp.var_count();
        let (solution, stats) = csp.solve(max_checks);
        match solution {
            None => MinesweeperReport {
                holds: false,
                timed_out: true,
                unreachable: Vec::new(),
                stats,
                variables,
            },
            Some(sol) => {
                let mut unreachable = Vec::new();
                for (d, dist_vars) in vars.iter().enumerate() {
                    for &src in sources {
                        if sol.values[dist_vars[src.index()]] >= self.unreachable {
                            unreachable.push((d, src));
                        }
                    }
                }
                MinesweeperReport {
                    holds: unreachable.is_empty(),
                    timed_out: false,
                    unreachable,
                    stats,
                    variables,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plankton_config::scenarios::{fat_tree_ospf, ring_ospf, CoreStaticRoutes};

    #[test]
    fn ring_reachability_holds() {
        let s = ring_ospf(5);
        let ms = MinesweeperStyle::new(&s.network);
        let dest = Destination {
            prefix: s.destination,
            origins: vec![s.origin],
        };
        let report = ms.verify_reachability(&[dest], &s.ring.routers, 10_000_000);
        assert!(report.holds, "{report:?}");
        assert!(!report.timed_out);
        assert_eq!(report.variables, 5);
    }

    #[test]
    fn disconnected_node_is_reported() {
        use plankton_config::{DeviceConfig, Network, OspfConfig};
        use plankton_net::topology::TopologyBuilder;
        let mut tb = TopologyBuilder::new();
        let a = tb.add_router("a");
        let b = tb.add_router("b");
        let c = tb.add_router("c"); // isolated
        tb.add_link(a, b);
        let mut net = Network::unconfigured(tb.build());
        let p: Prefix = "10.0.0.0/24".parse().unwrap();
        *net.device_mut(a) = DeviceConfig::empty().with_ospf(OspfConfig::originating(vec![p]));
        *net.device_mut(b) = DeviceConfig::empty().with_ospf(OspfConfig::enabled());
        *net.device_mut(c) = DeviceConfig::empty().with_ospf(OspfConfig::enabled());
        let ms = MinesweeperStyle::new(&net);
        let report = ms.verify_reachability(
            &[Destination {
                prefix: p,
                origins: vec![a],
            }],
            &[b, c],
            10_000_000,
        );
        assert!(!report.holds);
        assert_eq!(report.unreachable, vec![(0, c)]);
    }

    #[test]
    fn encoding_grows_with_destination_count() {
        let s = fat_tree_ospf(4, CoreStaticRoutes::None);
        let ms = MinesweeperStyle::new(&s.network);
        let one: Vec<Destination> = s.destinations[..1]
            .iter()
            .map(|&p| Destination {
                prefix: p,
                origins: s.network.origins_of(&p),
            })
            .collect();
        let all: Vec<Destination> = s
            .destinations
            .iter()
            .map(|&p| Destination {
                prefix: p,
                origins: s.network.origins_of(&p),
            })
            .collect();
        let (csp_one, _) = ms.encode(&one);
        let (csp_all, _) = ms.encode(&all);
        assert_eq!(
            csp_all.var_count(),
            csp_one.var_count() * s.destinations.len()
        );
    }

    #[test]
    fn budget_exhaustion_reports_timeout() {
        let s = ring_ospf(8);
        let ms = MinesweeperStyle::new(&s.network);
        let dest = Destination {
            prefix: s.destination,
            origins: vec![s.origin],
        };
        let report = ms.verify_reachability(&[dest], &s.ring.routers, 10);
        assert!(report.timed_out);
        assert!(!report.holds);
    }
}
