//! A small finite-domain constraint solver.
//!
//! This is the stand-in for the general-purpose SMT solving Minesweeper
//! delegates to Z3: variables with integer domains, arbitrary constraints
//! over them, and chronological backtracking search with forward checking of
//! fully-assigned constraints. It intentionally has none of the
//! domain-specific knowledge Plankton exploits — that contrast (general
//! search vs. executing the routing algorithm) is exactly what Figure 2 and
//! the Minesweeper comparisons in Figure 7 measure.

/// A variable handle.
pub type Var = usize;

/// A constraint: the variables it mentions and a predicate over their values
/// (invoked once all of them are assigned).
/// A predicate over a full assignment of a constraint's variables.
type Predicate = Box<dyn Fn(&[u64]) -> bool + Send + Sync>;

struct Constraint {
    vars: Vec<Var>,
    predicate: Predicate,
}

/// A constraint-satisfaction problem.
#[derive(Default)]
pub struct CspProblem {
    domains: Vec<Vec<u64>>,
    constraints: Vec<Constraint>,
    /// constraints_of[v] = indices of constraints mentioning v.
    constraints_of: Vec<Vec<usize>>,
}

/// A satisfying assignment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CspSolution {
    /// Values indexed by variable.
    pub values: Vec<u64>,
}

/// Search statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CspStats {
    /// Variable assignments tried.
    pub assignments: u64,
    /// Constraint evaluations.
    pub checks: u64,
    /// Backtracks taken.
    pub backtracks: u64,
}

impl CspProblem {
    /// An empty problem.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a variable with an explicit domain.
    pub fn add_var(&mut self, domain: Vec<u64>) -> Var {
        self.domains.push(domain);
        self.constraints_of.push(Vec::new());
        self.domains.len() - 1
    }

    /// Add a variable with domain `0..=max`.
    pub fn add_range_var(&mut self, max: u64) -> Var {
        self.add_var((0..=max).collect())
    }

    /// Number of variables.
    pub fn var_count(&self) -> usize {
        self.domains.len()
    }

    /// Add a constraint over `vars`; `predicate` receives their values in the
    /// same order.
    pub fn add_constraint<F>(&mut self, vars: Vec<Var>, predicate: F)
    where
        F: Fn(&[u64]) -> bool + Send + Sync + 'static,
    {
        let idx = self.constraints.len();
        for &v in &vars {
            self.constraints_of[v].push(idx);
        }
        self.constraints.push(Constraint {
            vars,
            predicate: Box::new(predicate),
        });
    }

    /// Pin a variable to a single value.
    pub fn assign(&mut self, var: Var, value: u64) {
        self.domains[var] = vec![value];
    }

    /// Solve by chronological backtracking. Returns the first solution found
    /// (if any) and the search statistics. `max_checks` bounds the work so
    /// that the benchmark harness can time out gracefully.
    pub fn solve(&self, max_checks: u64) -> (Option<CspSolution>, CspStats) {
        let n = self.var_count();
        let mut assignment: Vec<Option<u64>> = vec![None; n];
        let mut stats = CspStats::default();
        let ok = self.backtrack(0, &mut assignment, &mut stats, max_checks);
        let solution = ok.then(|| CspSolution {
            values: assignment.iter().map(|v| v.expect("complete")).collect(),
        });
        (solution, stats)
    }

    fn consistent(&self, var: Var, assignment: &[Option<u64>], stats: &mut CspStats) -> bool {
        for &ci in &self.constraints_of[var] {
            let c = &self.constraints[ci];
            let mut values = Vec::with_capacity(c.vars.len());
            let mut complete = true;
            for &v in &c.vars {
                match assignment[v] {
                    Some(x) => values.push(x),
                    None => {
                        complete = false;
                        break;
                    }
                }
            }
            if complete {
                stats.checks += 1;
                if !(c.predicate)(&values) {
                    return false;
                }
            }
        }
        true
    }

    fn backtrack(
        &self,
        var: Var,
        assignment: &mut Vec<Option<u64>>,
        stats: &mut CspStats,
        max_checks: u64,
    ) -> bool {
        if stats.checks > max_checks {
            return false;
        }
        if var == self.var_count() {
            return true;
        }
        for &value in &self.domains[var] {
            stats.assignments += 1;
            assignment[var] = Some(value);
            if self.consistent(var, assignment, stats)
                && self.backtrack(var + 1, assignment, stats, max_checks)
            {
                return true;
            }
            assignment[var] = None;
            stats.backtracks += 1;
        }
        false
    }
}

/// Encode single-source shortest paths as a CSP (the Figure 2 "SMT"
/// formulation): one distance variable per node, constrained so that the
/// origin is at 0, no node is closer than any neighbor allows, and every
/// non-origin node is supported by some neighbor.
pub fn shortest_path_csp(
    node_count: usize,
    edges: &[(usize, usize, u64)],
    origin: usize,
    max_dist: u64,
) -> CspProblem {
    let mut csp = CspProblem::new();
    let vars: Vec<Var> = (0..node_count)
        .map(|_| csp.add_range_var(max_dist))
        .collect();
    csp.assign(vars[origin], 0);
    // Adjacency list.
    let mut adj: Vec<Vec<(usize, u64)>> = vec![Vec::new(); node_count];
    for &(a, b, w) in edges {
        adj[a].push((b, w));
        adj[b].push((a, w));
    }
    for n in 0..node_count {
        for &(m, w) in &adj[n] {
            // dist[n] <= dist[m] + w
            csp.add_constraint(vec![vars[n], vars[m]], move |v| v[0] <= v[1] + w);
        }
        if n != origin {
            // dist[n] is witnessed by some neighbor.
            let mut cvars = vec![vars[n]];
            let weights: Vec<u64> = adj[n].iter().map(|&(_, w)| w).collect();
            cvars.extend(adj[n].iter().map(|&(m, _)| vars[m]));
            csp.add_constraint(cvars, move |v| {
                weights
                    .iter()
                    .enumerate()
                    .any(|(i, &w)| v[0] == v[i + 1].saturating_add(w))
            });
        }
    }
    csp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_sat_and_unsat() {
        let mut csp = CspProblem::new();
        let x = csp.add_range_var(3);
        let y = csp.add_range_var(3);
        csp.add_constraint(vec![x, y], |v| v[0] + v[1] == 5);
        let (sol, stats) = csp.solve(10_000);
        let sol = sol.expect("satisfiable");
        assert_eq!(sol.values[x] + sol.values[y], 5);
        assert!(stats.assignments > 0);

        let mut unsat = CspProblem::new();
        let a = unsat.add_range_var(1);
        unsat.add_constraint(vec![a], |v| v[0] > 5);
        let (sol, _) = unsat.solve(10_000);
        assert!(sol.is_none());
    }

    #[test]
    fn shortest_path_encoding_matches_dijkstra_on_a_square() {
        // 0-1-3, 0-2-3 square with unit weights: dist 3 = 2.
        let edges = vec![(0, 1, 1), (1, 3, 1), (0, 2, 1), (2, 3, 1)];
        let csp = shortest_path_csp(4, &edges, 0, 8);
        let (sol, _) = csp.solve(1_000_000);
        let sol = sol.expect("satisfiable");
        assert_eq!(sol.values, vec![0, 1, 1, 2]);
    }

    #[test]
    fn shortest_path_weighted() {
        let edges = vec![(0, 1, 10), (0, 2, 1), (2, 1, 2)];
        let csp = shortest_path_csp(3, &edges, 0, 16);
        let (sol, _) = csp.solve(1_000_000);
        let sol = sol.expect("satisfiable");
        assert_eq!(sol.values[1], 3);
        assert_eq!(sol.values[2], 1);
    }

    #[test]
    fn check_budget_cuts_off_search() {
        let mut csp = CspProblem::new();
        for _ in 0..12 {
            csp.add_range_var(9);
        }
        // Unsatisfiable constraint touching the last variable keeps the
        // search busy.
        csp.add_constraint((0..12).collect(), |v| v.iter().sum::<u64>() > 200);
        let (sol, stats) = csp.solve(5_000);
        assert!(sol.is_none());
        // The budget is checked once per backtracking call, so the overshoot
        // is bounded by the work of the frames already on the stack.
        assert!(stats.checks < 6_000, "checks = {}", stats.checks);
    }
}
