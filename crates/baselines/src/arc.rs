//! An ARC-style baseline (Gember-Jacobson et al.): graph algorithms answering
//! all-to-all reachability under bounded link failures for shortest-path
//! routing.
//!
//! ARC builds a weighted digraph per source/destination pair and decides
//! "reachable under every combination of at most `k` failures" with a
//! min-cut computation. The reimplementation here does exactly that — one
//! edge-disjoint-paths (max-flow) computation per pair over the
//! OSPF-enabled, policy-compliant subgraph — which reproduces ARC's
//! characteristic cost profile: insensitive to the number of failures,
//! quadratic in the number of relevant devices.

use plankton_config::Network;
use plankton_net::failure::FailureSet;
use plankton_net::graph::edge_disjoint_paths;
use plankton_net::topology::NodeId;

/// The ARC-style verifier.
pub struct ArcBaseline<'a> {
    network: &'a Network,
}

/// The result of an all-to-all reachability check.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ArcReport {
    /// Pairs that remain reachable under every failure combination.
    pub reachable_pairs: usize,
    /// Pairs that can be disconnected by some combination of at most `k`
    /// failures (the violating pairs).
    pub vulnerable_pairs: Vec<(NodeId, NodeId)>,
    /// Number of max-flow computations performed.
    pub flow_computations: usize,
}

impl ArcReport {
    /// Does all-to-all reachability hold under the failure bound?
    pub fn holds(&self) -> bool {
        self.vulnerable_pairs.is_empty()
    }
}

impl<'a> ArcBaseline<'a> {
    /// A baseline verifier over a (shortest-path-routed) network.
    pub fn new(network: &'a Network) -> Self {
        ArcBaseline { network }
    }

    /// Is `dst` reachable from `src` under *every* combination of at most
    /// `max_failures` link failures? By Menger's theorem this holds exactly
    /// when there are strictly more than `max_failures` edge-disjoint paths.
    pub fn reachable_under_failures(&self, src: NodeId, dst: NodeId, max_failures: usize) -> bool {
        if src == dst {
            return true;
        }
        edge_disjoint_paths(&self.network.topology, src, dst, &FailureSet::none()) > max_failures
    }

    /// All-to-all reachability among `nodes` (every ordered pair, matching
    /// ARC's per-(src, dst) model construction) under at most `max_failures`
    /// failures.
    pub fn all_to_all(&self, nodes: &[NodeId], max_failures: usize) -> ArcReport {
        let mut report = ArcReport::default();
        for &src in nodes {
            for &dst in nodes {
                if src == dst {
                    continue;
                }
                report.flow_computations += 1;
                if self.reachable_under_failures(src, dst, max_failures) {
                    report.reachable_pairs += 1;
                } else {
                    report.vulnerable_pairs.push((src, dst));
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plankton_config::scenarios::{fat_tree_ospf, ring_ospf, CoreStaticRoutes};

    #[test]
    fn ring_survives_one_failure_not_two() {
        let s = ring_ospf(6);
        let arc = ArcBaseline::new(&s.network);
        let nodes: Vec<NodeId> = s.ring.routers.clone();
        assert!(arc.all_to_all(&nodes, 0).holds());
        assert!(arc.all_to_all(&nodes, 1).holds());
        let two = arc.all_to_all(&nodes, 2);
        assert!(!two.holds());
        assert_eq!(two.flow_computations, 30);
    }

    #[test]
    fn fat_tree_edge_pairs_survive_single_failures() {
        let s = fat_tree_ospf(4, CoreStaticRoutes::None);
        let arc = ArcBaseline::new(&s.network);
        let edges = s.fat_tree.edges_flat();
        // Every edge switch has two uplinks: a single failure never
        // disconnects a pair of edge switches.
        assert!(arc.all_to_all(&edges, 1).holds());
        // Two failures can isolate an edge switch (it only has 2 uplinks).
        assert!(!arc.all_to_all(&edges, 2).holds());
    }

    #[test]
    fn self_pairs_are_trivially_reachable() {
        let s = ring_ospf(4);
        let arc = ArcBaseline::new(&s.network);
        assert!(arc.reachable_under_failures(s.ring.routers[0], s.ring.routers[0], 99));
    }
}
