//! The worker pool: dependency-counting task execution with work stealing
//! and an early-stop broadcast.
//!
//! Each worker loops: pop local work (LIFO), else steal (FIFO), else sleep
//! briefly. Completing a task decrements the pending-dependency counter of
//! every dependent; a dependent whose counter hits zero is pushed onto the
//! *completing* worker's deque — its dependency outcomes were just produced
//! there, so running it on the same worker keeps them cache-hot, and idle
//! workers steal it away if the owner is busy. There are no level barriers:
//! a finished component immediately unblocks its dependents while unrelated
//! components keep running.
//!
//! The caller's task closure performs all outcome storage before returning,
//! so "the engine released a dependent" implies "its dependencies' outcomes
//! have landed in the store" (the §3.2 scheduling contract).
//!
//! When [`WorkerContext::request_stop`] fires (first policy violation under
//! stop-at-first semantics), remaining tasks *drain*: they complete without
//! running, still releasing their dependents, so the pool winds down without
//! special-case termination logic and the skipped count is reported.

use crate::graph::{TaskGraph, TaskId};
use crate::queue::TaskQueue;
use crate::stats::{EngineStats, TaskFailure};
use plankton_checker::SearchScratch;
use std::cell::{RefCell, RefMut};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// The work-stealing verification engine: a fixed pool of workers.
#[derive(Clone, Debug)]
pub struct Engine {
    workers: usize,
}

impl Engine {
    /// An engine with `workers` workers (at least one).
    pub fn new(workers: usize) -> Self {
        Engine {
            workers: workers.max(1),
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Execute every task in `graph`, honoring dependency edges, and return
    /// the pool statistics. `f` runs once per task unless the early-stop
    /// broadcast fires first; it must finish all outcome storage for the
    /// task before returning.
    pub fn run<F>(&self, graph: &TaskGraph, f: F) -> EngineStats
    where
        F: Fn(TaskId, &WorkerContext<'_>) + Sync,
    {
        let start = Instant::now();
        let total = graph.len();
        let shared = Shared {
            graph,
            queue: TaskQueue::new(self.workers),
            pending: graph
                .dependency_counts()
                .into_iter()
                .map(AtomicUsize::new)
                .collect(),
            total,
            completed: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            executed: AtomicU64::new(0),
            stolen: AtomicU64::new(0),
            skipped: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
            failures: Mutex::new(Vec::new()),
            queued: AtomicUsize::new(0),
            queue_depth_max: AtomicUsize::new(0),
            busy_micros: AtomicU64::new(0),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
        };

        // A cyclic graph would leave pending counters that never reach zero
        // and hang the pool with no diagnostic; the check is O(V+E), noise
        // next to the model checking each task performs.
        assert!(graph.is_acyclic(), "task graph contains a dependency cycle");

        // Seed the roots round-robin across the workers.
        let mut seeded = 0usize;
        for t in 0..total {
            if graph.dependencies(TaskId(t)).is_empty() {
                shared.push_tracked(seeded % self.workers, TaskId(t));
                seeded += 1;
            }
        }
        assert!(
            total == 0 || seeded > 0,
            "task graph has no runnable roots (dependency cycle?)"
        );

        let scratch_reuses: u64 = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.workers)
                .map(|worker| {
                    let shared = &shared;
                    let f = &f;
                    scope.spawn(move || worker_loop(shared, worker, f))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(reuses) => reuses,
                    // Task panics are caught inside the loop; a worker loop
                    // panicking here is an engine bug, not a task fault.
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .sum()
        });

        let mut failures = shared
            .failures
            .lock()
            .expect("engine failure list poisoned")
            .clone();
        failures.sort_by_key(|f| f.task);
        let completed = shared.completed.load(Ordering::Acquire);
        let stats = EngineStats {
            workers: self.workers,
            tasks_total: total,
            tasks_executed: shared.executed.load(Ordering::Relaxed),
            tasks_stolen: shared.stolen.load(Ordering::Relaxed),
            tasks_skipped: shared.skipped.load(Ordering::Relaxed),
            tasks_pending: total - completed,
            scratch_reuses,
            interned_routes: 0,
            states_explored: 0,
            wall_micros: start.elapsed().as_micros() as u64,
            queue_depth_max: shared.queue_depth_max.load(Ordering::Relaxed),
            busy_micros: shared.busy_micros.load(Ordering::Relaxed),
            tasks_panicked: shared.panicked.load(Ordering::Relaxed),
            failures,
        };
        record_run_metrics(&stats);
        stats
    }
}

/// Fold one finished engine run into the process-global metrics. Handles
/// resolve once per process; this runs once per engine run, and the only
/// per-task cost added anywhere is two `Instant` reads and one histogram
/// observe in [`worker_loop`].
fn record_run_metrics(stats: &EngineStats) {
    use std::sync::OnceLock;
    struct Handles {
        stolen: std::sync::Arc<plankton_telemetry::Counter>,
        busy: std::sync::Arc<plankton_telemetry::Counter>,
        queue_depth: std::sync::Arc<plankton_telemetry::Gauge>,
        panicked: std::sync::Arc<plankton_telemetry::Counter>,
    }
    static HANDLES: OnceLock<Handles> = OnceLock::new();
    let handles = HANDLES.get_or_init(|| {
        let registry = plankton_telemetry::metrics::global();
        Handles {
            stolen: registry.counter(
                "plankton_tasks_stolen_total",
                "Tasks a worker took from another worker's deque.",
            ),
            busy: registry.counter(
                "plankton_worker_busy_micros_total",
                "Microseconds workers spent inside task closures, summed across workers.",
            ),
            queue_depth: registry.gauge(
                "plankton_queue_depth_max",
                "High-water mark of runnable tasks queued at once, across all engine runs.",
            ),
            panicked: registry.counter(
                "plankton_tasks_panicked_total",
                "Task closures that panicked and were contained as structured failures.",
            ),
        }
    });
    handles.stolen.add(stats.tasks_stolen);
    handles.busy.add(stats.busy_micros);
    handles.queue_depth.record_max(stats.queue_depth_max as u64);
    handles.panicked.add(stats.tasks_panicked);
}

/// The per-task wall-time histogram (`plankton_task_seconds`), resolved once.
fn task_seconds() -> &'static std::sync::Arc<plankton_telemetry::Histogram> {
    use std::sync::OnceLock;
    static HANDLE: OnceLock<std::sync::Arc<plankton_telemetry::Histogram>> = OnceLock::new();
    HANDLE.get_or_init(|| {
        plankton_telemetry::metrics::global().histogram(
            "plankton_task_seconds",
            "Wall time of one executed (PEC-component, failure-scenario) task.",
            plankton_telemetry::Unit::Micros,
        )
    })
}

/// Per-worker execution context handed to the task closure.
pub struct WorkerContext<'e> {
    /// This worker's index in the pool.
    pub worker: usize,
    scratch: RefCell<SearchScratch>,
    shared: &'e dyn StopControl,
}

impl<'e> WorkerContext<'e> {
    /// Broadcast early stop: remaining tasks drain without running.
    pub fn request_stop(&self) {
        self.shared.request_stop();
    }

    /// Has any worker requested a stop?
    pub fn stop_requested(&self) -> bool {
        self.shared.stop_requested()
    }

    /// This worker's reusable search scratch (visited-set allocations shared
    /// across the worker's sequence of model-checking runs).
    pub fn scratch(&self) -> RefMut<'_, SearchScratch> {
        self.scratch.borrow_mut()
    }

    /// The scratch cell itself, for threading into code that borrows it
    /// per model-checking run.
    pub fn scratch_cell(&self) -> &RefCell<SearchScratch> {
        &self.scratch
    }
}

/// The stop-broadcast interface `WorkerContext` needs from the pool (object
/// safe so the context does not carry the graph lifetime).
trait StopControl: Sync {
    fn request_stop(&self);
    fn stop_requested(&self) -> bool;
}

struct Shared<'g> {
    graph: &'g TaskGraph,
    queue: TaskQueue,
    pending: Vec<AtomicUsize>,
    total: usize,
    completed: AtomicUsize,
    stop: AtomicBool,
    executed: AtomicU64,
    stolen: AtomicU64,
    skipped: AtomicU64,
    panicked: AtomicU64,
    failures: Mutex<Vec<TaskFailure>>,
    /// Runnable tasks currently sitting in worker deques.
    queued: AtomicUsize,
    queue_depth_max: AtomicUsize,
    busy_micros: AtomicU64,
    sleep: Mutex<()>,
    wake: Condvar,
}

impl Shared<'_> {
    /// Push a runnable task, maintaining the queue-depth high-water mark.
    fn push_tracked(&self, worker: usize, task: TaskId) {
        self.queue.push(worker, task);
        let depth = self.queued.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_depth_max.fetch_max(depth, Ordering::Relaxed);
    }
}

impl StopControl for Shared<'_> {
    fn request_stop(&self) {
        self.stop.store(true, Ordering::Release);
        self.wake.notify_all();
    }

    fn stop_requested(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }
}

/// Best-effort extraction of a panic payload's message (`panic!` with a
/// string literal or format string covers practically every real payload).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn worker_loop<F>(shared: &Shared<'_>, worker: usize, f: &F) -> u64
where
    F: Fn(TaskId, &WorkerContext<'_>) + Sync,
{
    let ctx = WorkerContext {
        worker,
        scratch: RefCell::new(SearchScratch::new()),
        shared,
    };
    loop {
        if shared.completed.load(Ordering::Acquire) >= shared.total {
            break;
        }
        let task = shared.queue.pop(worker).or_else(|| {
            let stolen = shared.queue.steal(worker);
            if stolen.is_some() {
                shared.stolen.fetch_add(1, Ordering::Relaxed);
            }
            stolen
        });
        match task {
            Some(task) => {
                shared.queued.fetch_sub(1, Ordering::Relaxed);
                if shared.stop_requested() {
                    shared.skipped.fetch_add(1, Ordering::Relaxed);
                } else {
                    // A panicking task is contained, not re-raised: record a
                    // structured TaskFailure and broadcast stop *before* the
                    // accounting below releases this task's dependents — they
                    // (and every other remaining task) then drain as skipped,
                    // so nothing runs against outcome records the panicked
                    // closure never stored, and the caller gets a completed
                    // (but degraded) run instead of a dead process.
                    let task_start = Instant::now();
                    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(task, &ctx))) {
                        Ok(()) => {
                            let elapsed = task_start.elapsed().as_micros() as u64;
                            shared.busy_micros.fetch_add(elapsed, Ordering::Relaxed);
                            task_seconds().observe(elapsed);
                            shared.executed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(payload) => {
                            shared.request_stop();
                            shared.panicked.fetch_add(1, Ordering::Relaxed);
                            shared
                                .failures
                                .lock()
                                .expect("engine failure list poisoned")
                                .push(TaskFailure {
                                    task: task.index(),
                                    message: panic_message(payload.as_ref()),
                                });
                        }
                    }
                }
                // Release dependents whose last dependency this was. The
                // AcqRel decrement orders the task's outcome writes before
                // any dependent observes a zero counter.
                let mut released = false;
                for &d in shared.graph.dependents(task) {
                    if shared.pending[d.index()].fetch_sub(1, Ordering::AcqRel) == 1 {
                        shared.push_tracked(worker, d);
                        released = true;
                    }
                }
                let done = shared.completed.fetch_add(1, Ordering::AcqRel) + 1;
                if released || done >= shared.total {
                    shared.wake.notify_all();
                }
            }
            None => {
                let guard = shared.sleep.lock().expect("engine sleep lock poisoned");
                if shared.completed.load(Ordering::Acquire) >= shared.total {
                    break;
                }
                // Timed wait: a wakeup can slip in between the queue check
                // and this lock, so never sleep unbounded.
                let _ = shared
                    .wake
                    .wait_timeout(guard, Duration::from_millis(1))
                    .expect("engine sleep lock poisoned");
            }
        }
    }
    let reuses = ctx.scratch.borrow().reuse_count();
    reuses
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TaskGraph;
    use std::sync::atomic::AtomicU32;
    use std::sync::Mutex as StdMutex;

    #[test]
    fn every_task_runs_exactly_once() {
        let graph = TaskGraph::new(64);
        let ran: Vec<AtomicU32> = (0..64).map(|_| AtomicU32::new(0)).collect();
        let stats = Engine::new(4).run(&graph, |t, _| {
            ran[t.index()].fetch_add(1, Ordering::SeqCst);
        });
        assert!(ran.iter().all(|r| r.load(Ordering::SeqCst) == 1));
        assert_eq!(stats.tasks_executed, 64);
        assert_eq!(stats.tasks_total, 64);
        assert_eq!(stats.tasks_pending, 0);
        assert_eq!(stats.tasks_skipped, 0);
    }

    #[test]
    fn dependencies_complete_before_dependents_run() {
        // A diamond repeated many times to give races a chance: 4k+0 -> 4k+1,
        // 4k+2 -> 4k+3.
        let n = 40;
        let mut graph = TaskGraph::new(n);
        for k in (0..n).step_by(4) {
            graph.add_dependency(TaskId(k), TaskId(k + 1));
            graph.add_dependency(TaskId(k), TaskId(k + 2));
            graph.add_dependency(TaskId(k + 1), TaskId(k + 3));
            graph.add_dependency(TaskId(k + 2), TaskId(k + 3));
        }
        for _ in 0..20 {
            let outcome: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
            Engine::new(4).run(&graph, |t, _| {
                // A task's outcome is stored before it returns; dependents
                // must observe every dependency outcome.
                for d in graph.dependencies(t) {
                    assert_eq!(
                        outcome[d.index()].load(Ordering::SeqCst),
                        1,
                        "task {t:?} ran before its dependency {d:?} landed"
                    );
                }
                outcome[t.index()].store(1, Ordering::SeqCst);
            });
        }
    }

    #[test]
    fn early_stop_drains_remaining_tasks() {
        // A chain of 10 tasks on one worker: the first requests a stop, the
        // other nine must drain as skipped, deterministically.
        let mut graph = TaskGraph::new(10);
        for t in 1..10 {
            graph.add_dependency(TaskId(t), TaskId(t - 1));
        }
        let stats = Engine::new(1).run(&graph, |t, ctx| {
            if t.index() == 0 {
                ctx.request_stop();
            } else {
                panic!("task {t:?} ran after the stop broadcast");
            }
        });
        assert_eq!(stats.tasks_executed, 1);
        assert_eq!(stats.tasks_skipped, 9);
        assert!(stats.stopped_early());
        assert_eq!(stats.tasks_pending, 0);
    }

    #[test]
    fn released_work_is_stolen_by_idle_workers() {
        // One root fans out into many slow children. The children are all
        // released onto the root's worker, so the other workers can only get
        // work by stealing.
        let children = 48;
        let mut graph = TaskGraph::new(children + 1);
        for c in 1..=children {
            graph.add_dependency(TaskId(c), TaskId(0));
        }
        let seen_workers = StdMutex::new(std::collections::BTreeSet::new());
        let stats = Engine::new(4).run(&graph, |_, ctx| {
            seen_workers.lock().unwrap().insert(ctx.worker);
            std::thread::sleep(Duration::from_millis(2));
        });
        assert_eq!(stats.tasks_executed as usize, children + 1);
        assert!(
            stats.tasks_stolen > 0,
            "idle workers should have stolen fanned-out work: {stats}"
        );
        assert!(seen_workers.lock().unwrap().len() > 1);
    }

    #[test]
    fn task_panic_is_contained_as_a_structured_failure() {
        let mut graph = TaskGraph::new(12);
        for t in 1..12 {
            graph.add_dependency(TaskId(t), TaskId(t - 1));
        }
        // Without the catch-unwind accounting this would deadlock (the test
        // finishing at all is half the assertion). The panic must NOT reach
        // the caller: it becomes a TaskFailure, stop broadcasts, and the
        // dependents of the dead task drain as skipped — none of them runs
        // against the outcome the panicked closure never stored.
        let ran_after_panic = AtomicU32::new(0);
        let stats = Engine::new(3).run(&graph, |t, _| {
            if t.index() == 2 {
                panic!("task blew up");
            }
            if t.index() > 2 {
                ran_after_panic.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert_eq!(stats.tasks_panicked, 1);
        assert_eq!(stats.failures.len(), 1);
        assert_eq!(stats.failures[0].task, 2);
        assert_eq!(stats.failures[0].message, "task blew up");
        assert_eq!(ran_after_panic.load(Ordering::SeqCst), 0);
        assert_eq!(stats.tasks_executed, 2);
        assert_eq!(stats.tasks_skipped, 9);
        assert_eq!(stats.tasks_pending, 0, "the pool drained fully");
        assert!(stats.stopped_early());
    }

    #[test]
    fn empty_graph_is_a_noop() {
        let stats = Engine::new(8).run(&TaskGraph::new(0), |_, _| {
            panic!("no tasks to run");
        });
        assert_eq!(stats.tasks_total, 0);
        assert_eq!(stats.tasks_executed, 0);
    }

    #[test]
    fn scratch_is_available_per_worker() {
        let graph = TaskGraph::new(8);
        let opts = plankton_checker::SearchOptions::all_optimizations();
        let stats = Engine::new(2).run(&graph, |_, ctx| {
            let mut scratch = ctx.scratch();
            let visited = scratch.take_visited(&opts);
            scratch.put_visited(visited);
        });
        // 8 runs across 2 workers: at least 6 visited-set reuses.
        assert!(stats.scratch_reuses >= 6, "{stats}");
    }
}
