//! Engine execution statistics.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One contained task panic: the pool caught it, broadcast early stop, and
/// drained instead of crashing the process. Carried in [`EngineStats`] so
/// the verifier (and ultimately the service) can answer the request with a
/// structured error while the daemon keeps serving.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskFailure {
    /// Index of the panicked task in the run's task graph.
    pub task: usize,
    /// The panic payload, when it was a string (the common `panic!` case).
    pub message: String,
}

/// A snapshot of what the worker pool did during one engine run, surfaced in
/// the verification report.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Number of workers in the pool.
    pub workers: usize,
    /// Total tasks in the graph (components × failure scenarios).
    pub tasks_total: usize,
    /// Tasks whose work actually ran.
    pub tasks_executed: u64,
    /// Tasks a worker took from another worker's deque.
    pub tasks_stolen: u64,
    /// Tasks drained without running because the early-stop broadcast fired
    /// first.
    pub tasks_skipped: u64,
    /// Tasks not yet completed when the snapshot was taken (0 after a full
    /// run).
    pub tasks_pending: usize,
    /// Model-checking runs that reused a previous run's visited-set
    /// allocation through the per-worker scratch.
    pub scratch_reuses: u64,
    /// Distinct control-plane routes in the shared interner after the run.
    pub interned_routes: u64,
    /// Total states explored across every model-checking run (filled in by
    /// the verifier, which owns the search statistics).
    pub states_explored: u64,
    /// Wall-clock time of the engine run, in microseconds.
    pub wall_micros: u64,
    /// High-water mark of runnable tasks queued across all workers at once
    /// (how much parallelism the graph actually exposed).
    #[serde(default)]
    pub queue_depth_max: usize,
    /// Total time workers spent executing task closures, in microseconds,
    /// summed across workers (the rest of `workers × wall` was stealing,
    /// sleeping, or draining).
    #[serde(default)]
    pub busy_micros: u64,
    /// Tasks whose closure panicked; each is caught, recorded in
    /// [`failures`](Self::failures), and triggers the early-stop drain.
    #[serde(default)]
    pub tasks_panicked: u64,
    /// Structured details of every contained panic, ordered by task index.
    #[serde(default)]
    pub failures: Vec<TaskFailure>,
}

impl EngineStats {
    /// Wall-clock seconds.
    pub fn wall_seconds(&self) -> f64 {
        self.wall_micros as f64 / 1e6
    }

    /// Did the early-stop broadcast fire?
    pub fn stopped_early(&self) -> bool {
        self.tasks_skipped > 0
    }

    /// Fraction of total worker time spent inside task closures, in 0..=1
    /// (1.0 means every worker was busy for the whole run).
    pub fn utilization(&self) -> f64 {
        let capacity = (self.workers as u64).saturating_mul(self.wall_micros);
        if capacity == 0 {
            return 0.0;
        }
        (self.busy_micros as f64 / capacity as f64).min(1.0)
    }
}

impl fmt::Display for EngineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} workers, {}/{} tasks run ({} stolen, {} skipped, {} panicked), \
             {} scratch reuses, {} interned routes, {:.3}s, \
             {:.0}% utilization (queue depth max {})",
            self.workers,
            self.tasks_executed,
            self.tasks_total,
            self.tasks_stolen,
            self.tasks_skipped,
            self.tasks_panicked,
            self.scratch_reuses,
            self.interned_routes,
            self.wall_seconds(),
            self.utilization() * 100.0,
            self.queue_depth_max,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_helpers() {
        let stats = EngineStats {
            workers: 4,
            tasks_total: 10,
            tasks_executed: 7,
            tasks_stolen: 2,
            tasks_skipped: 3,
            tasks_pending: 0,
            scratch_reuses: 5,
            interned_routes: 11,
            states_explored: 100,
            wall_micros: 2_500_000,
            queue_depth_max: 6,
            busy_micros: 5_000_000,
            tasks_panicked: 1,
            failures: vec![TaskFailure {
                task: 4,
                message: "boom".into(),
            }],
        };
        assert!(stats.stopped_early());
        assert_eq!(stats.wall_seconds(), 2.5);
        // 5s busy over 4 workers × 2.5s wall = 50%.
        assert_eq!(stats.utilization(), 0.5);
        assert_eq!(EngineStats::default().utilization(), 0.0);
        let s = stats.to_string();
        assert!(s.contains("4 workers"));
        assert!(s.contains("7/10 tasks"));
        assert!(s.contains("50% utilization"));
        assert!(s.contains("queue depth max 6"));
    }
}
