//! Concurrent sharded route interning.
//!
//! Converged records stored for dependent PECs carry one control-plane
//! [`Route`] per device, and the same routes recur across failure scenarios,
//! converged alternatives and PECs. Interning hash-conses them: every
//! distinct route is allocated once and records share `Arc`s, which both
//! shrinks the dependency store and makes record construction cheaper (an
//! `Arc` clone instead of a deep route clone with its path vectors).
//!
//! The table is sharded by route hash so concurrent workers rarely contend
//! on the same lock; this is the cross-task complement of the checker's
//! per-run state hashing (§4.4 of the paper).

use plankton_protocols::Route;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex};

/// Number of shards; a power of two so the hash maps onto a shard by mask.
const SHARDS: usize = 16;

/// A concurrent hash-consing table for routes.
#[derive(Debug)]
pub struct SharedRouteInterner {
    // `Arc<Route>: Borrow<Route>`, so lookups by `&Route` need no clone and
    // each distinct route is stored exactly once.
    shards: Vec<Mutex<HashSet<Arc<Route>>>>,
}

impl Default for SharedRouteInterner {
    fn default() -> Self {
        SharedRouteInterner {
            shards: (0..SHARDS).map(|_| Mutex::new(HashSet::new())).collect(),
        }
    }
}

impl SharedRouteInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    fn shard(&self, route: &Route) -> &Mutex<HashSet<Arc<Route>>> {
        let mut h = DefaultHasher::new();
        route.hash(&mut h);
        &self.shards[(h.finish() as usize) & (SHARDS - 1)]
    }

    /// The shared allocation for `route`, interning it on first sight.
    pub fn intern(&self, route: &Route) -> Arc<Route> {
        let mut shard = self.shard(route).lock().expect("interner shard poisoned");
        if let Some(existing) = shard.get(route) {
            return Arc::clone(existing);
        }
        let arc = Arc::new(route.clone());
        shard.insert(Arc::clone(&arc));
        arc
    }

    /// Intern an optional route.
    pub fn intern_opt(&self, route: Option<&Route>) -> Option<Arc<Route>> {
        route.map(|r| self.intern(r))
    }

    /// Number of distinct routes interned.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("interner shard poisoned").len())
            .sum()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plankton_net::ip::Prefix;
    use plankton_net::topology::NodeId;

    fn route(hops: &[u32]) -> Route {
        let mut r = Route::originated(Prefix::DEFAULT);
        for &h in hops.iter().rev() {
            r = r.extended_through(NodeId(h));
        }
        r
    }

    #[test]
    fn interning_shares_allocations() {
        let interner = SharedRouteInterner::new();
        let a = interner.intern(&route(&[1, 2, 3]));
        let b = interner.intern(&route(&[1, 2, 3]));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(interner.len(), 1);
        let c = interner.intern(&route(&[4]));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn concurrent_interning_converges_to_one_arc_per_route() {
        let interner = SharedRouteInterner::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for i in 0..100u32 {
                        interner.intern(&route(&[i % 10]));
                    }
                });
            }
        });
        assert_eq!(interner.len(), 10);
    }

    #[test]
    fn optional_interning() {
        let interner = SharedRouteInterner::new();
        assert!(interner.intern_opt(None).is_none());
        assert!(interner.intern_opt(Some(&route(&[1]))).is_some());
        assert!(!interner.is_empty());
    }
}
