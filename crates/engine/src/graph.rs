//! The verification task graph.
//!
//! A task is one unit of schedulable work; edges point from a task to the
//! tasks it depends on. For Plankton the tasks are the cross product of PEC
//! dependency components and failure scenarios (see [`pec_task_graph`]): a
//! component's verification under failure set *F* needs the converged
//! outcomes of its dependency components under exactly *F* (§3.2 — topology
//! changes are matched across explorations), and nothing else. Tasks of
//! unrelated components — and tasks of the *same* component under different
//! failure sets — are independent and free to run concurrently.

use plankton_pec::PecDependencies;

/// Identifier of a task in a [`TaskGraph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub usize);

impl TaskId {
    /// The task's index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// A dependency DAG over tasks.
#[derive(Clone, Debug, Default)]
pub struct TaskGraph {
    /// `deps[t]` = tasks that must complete before `t` may run.
    deps: Vec<Vec<TaskId>>,
    /// `dependents[t]` = tasks waiting on `t` (reverse edges).
    dependents: Vec<Vec<TaskId>>,
}

impl TaskGraph {
    /// A graph of `tasks` tasks and no edges.
    pub fn new(tasks: usize) -> Self {
        TaskGraph {
            deps: vec![Vec::new(); tasks],
            dependents: vec![Vec::new(); tasks],
        }
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.deps.len()
    }

    /// Is the graph empty?
    pub fn is_empty(&self) -> bool {
        self.deps.is_empty()
    }

    /// Declare that `task` cannot run until `dep` has completed.
    pub fn add_dependency(&mut self, task: TaskId, dep: TaskId) {
        assert_ne!(task, dep, "a task cannot depend on itself");
        self.deps[task.index()].push(dep);
        self.dependents[dep.index()].push(task);
    }

    /// The tasks `task` depends on.
    pub fn dependencies(&self, task: TaskId) -> &[TaskId] {
        &self.deps[task.index()]
    }

    /// The tasks waiting on `task`.
    pub fn dependents(&self, task: TaskId) -> &[TaskId] {
        &self.dependents[task.index()]
    }

    /// Initial in-degrees (number of dependencies) per task.
    pub fn dependency_counts(&self) -> Vec<usize> {
        self.deps.iter().map(Vec::len).collect()
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.deps.iter().map(Vec::len).sum()
    }

    /// Verify the graph is acyclic (a cycle would deadlock the executor).
    /// Returns `true` when every task is reachable through a topological
    /// order.
    pub fn is_acyclic(&self) -> bool {
        let mut pending = self.dependency_counts();
        let mut ready: Vec<usize> = (0..self.len()).filter(|&t| pending[t] == 0).collect();
        let mut seen = 0usize;
        while let Some(t) = ready.pop() {
            seen += 1;
            for d in &self.dependents[t] {
                pending[d.index()] -= 1;
                if pending[d.index()] == 0 {
                    ready.push(d.index());
                }
            }
        }
        seen == self.len()
    }
}

/// The dense encoding of (component, failure-scenario) pairs as [`TaskId`]s.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskMap {
    /// Number of PEC dependency components.
    pub components: usize,
    /// Number of failure sets explored per component.
    pub failure_sets: usize,
}

impl TaskMap {
    /// Total number of tasks.
    pub fn len(&self) -> usize {
        self.components * self.failure_sets
    }

    /// Is the cross product empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The task for `component` under failure set `failure_idx`.
    pub fn task(&self, component: usize, failure_idx: usize) -> TaskId {
        debug_assert!(component < self.components && failure_idx < self.failure_sets);
        TaskId(component * self.failure_sets + failure_idx)
    }

    /// The `(component, failure_idx)` pair of a task.
    pub fn decode(&self, task: TaskId) -> (usize, usize) {
        (
            task.index() / self.failure_sets,
            task.index() % self.failure_sets,
        )
    }
}

/// Build the (component × failure-scenario) task graph for a PEC dependency
/// analysis: task *(c, F)* depends on *(d, F)* for every component *d* that
/// *c* depends on. Failure scenarios never constrain each other.
pub fn pec_task_graph(deps: &PecDependencies, failure_sets: usize) -> (TaskGraph, TaskMap) {
    let all: Vec<usize> = (0..deps.component_count()).collect();
    pec_task_graph_for(deps, failure_sets, &all)
}

/// Like [`pec_task_graph`], but over a subset of components (a restricted
/// verification only schedules the components it needs). Task column *i*
/// corresponds to `components[i]`; dependency edges pointing outside the
/// subset are dropped, so the caller must pass a set closed under
/// dependencies for the scheduling contract to hold.
pub fn pec_task_graph_for(
    deps: &PecDependencies,
    failure_sets: usize,
    components: &[usize],
) -> (TaskGraph, TaskMap) {
    let index: std::collections::BTreeMap<usize, usize> = components
        .iter()
        .enumerate()
        .map(|(i, &c)| (c, i))
        .collect();
    let map = TaskMap {
        components: components.len(),
        failure_sets,
    };
    let mut graph = TaskGraph::new(map.len());
    for (i, &c) in components.iter().enumerate() {
        for d in &deps.component_deps[c] {
            let Some(&j) = index.get(d) else { continue };
            for f in 0..failure_sets {
                graph.add_dependency(map.task(i, f), map.task(j, f));
            }
        }
    }
    debug_assert!(graph.is_acyclic(), "SCC condensation must be a DAG");
    (graph, map)
}

/// The encoding of an *explicit* task list — the partial-resubmission form
/// used by incremental re-verification, where only the dirty subset of the
/// (component × failure-scenario) cross product is re-run.
#[derive(Clone, Debug, Default)]
pub struct SparseTaskMap {
    /// `tasks[t]` = the `(component, failure_idx)` pair of task `t`.
    tasks: Vec<(usize, usize)>,
}

impl SparseTaskMap {
    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Is the task list empty?
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The `(component, failure_idx)` pair of a task.
    pub fn decode(&self, task: TaskId) -> (usize, usize) {
        self.tasks[task.index()]
    }
}

/// Build the task graph for an explicit list of `(component, failure_idx)`
/// pairs — the dirty tasks of an incremental re-verification. Edges are
/// added only between tasks *present in the list*: a dependency on a clean
/// (cached) task needs no scheduling edge because its outcome is already
/// available from the result cache. The list must therefore be closed
/// upwards — if `(c, f)` is dirty and `c` depends on `d`, then either
/// `(d, f)` is in the list or `(d, f)`'s cached outcome is current — which
/// is exactly the contract content-keyed invalidation provides (a dirty
/// dependency re-keys its dependents).
pub fn pec_task_graph_sparse(
    deps: &PecDependencies,
    tasks: &[(usize, usize)],
) -> (TaskGraph, SparseTaskMap) {
    let index: std::collections::BTreeMap<(usize, usize), usize> =
        tasks.iter().enumerate().map(|(i, &t)| (t, i)).collect();
    let mut graph = TaskGraph::new(tasks.len());
    for (i, &(c, f)) in tasks.iter().enumerate() {
        for d in &deps.component_deps[c] {
            if let Some(&j) = index.get(&(*d, f)) {
                graph.add_dependency(TaskId(i), TaskId(j));
            }
        }
    }
    debug_assert!(graph.is_acyclic(), "SCC condensation must be a DAG");
    (
        graph,
        SparseTaskMap {
            tasks: tasks.to_vec(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use plankton_pec::{DependencyGraph, PecId};

    fn deps_from_edges(n: usize, edges: &[(u32, u32)]) -> PecDependencies {
        let mut depends_on = vec![Vec::new(); n];
        for &(a, b) in edges {
            depends_on[a as usize].push(PecId(b));
        }
        DependencyGraph { depends_on }.analyze()
    }

    #[test]
    fn edges_and_counts() {
        let mut g = TaskGraph::new(3);
        g.add_dependency(TaskId(2), TaskId(0));
        g.add_dependency(TaskId(2), TaskId(1));
        assert_eq!(g.len(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.dependencies(TaskId(2)), &[TaskId(0), TaskId(1)]);
        assert_eq!(g.dependents(TaskId(0)), &[TaskId(2)]);
        assert_eq!(g.dependency_counts(), vec![0, 0, 2]);
        assert!(g.is_acyclic());
    }

    #[test]
    fn cycles_are_detected() {
        let mut g = TaskGraph::new(2);
        g.add_dependency(TaskId(0), TaskId(1));
        g.add_dependency(TaskId(1), TaskId(0));
        assert!(!g.is_acyclic());
    }

    #[test]
    fn cross_product_replicates_edges_per_failure_set() {
        // PEC 0 depends on PEC 1; 3 failure sets.
        let deps = deps_from_edges(2, &[(0, 1)]);
        let (graph, map) = pec_task_graph(&deps, 3);
        assert_eq!(graph.len(), 6);
        assert_eq!(graph.edge_count(), 3);
        // Each dependent task points at its own failure set's producer.
        let comp_of_pec0 = deps.component_of(PecId(0));
        let comp_of_pec1 = deps.component_of(PecId(1));
        for f in 0..3 {
            let t = map.task(comp_of_pec0, f);
            assert_eq!(graph.dependencies(t), &[map.task(comp_of_pec1, f)]);
            assert_eq!(map.decode(t), (comp_of_pec0, f));
        }
        assert!(graph.is_acyclic());
    }

    #[test]
    fn sparse_graph_links_only_present_tasks() {
        // Component of PEC 0 depends on component of PEC 1.
        let deps = deps_from_edges(2, &[(0, 1)]);
        let c0 = deps.component_of(PecId(0));
        let c1 = deps.component_of(PecId(1));
        // Failure 0: both dirty → edge. Failure 1: only the dependent dirty
        // (its dependency is served from cache) → no edge.
        let tasks = vec![(c0, 0), (c1, 0), (c0, 1)];
        let (graph, map) = pec_task_graph_sparse(&deps, &tasks);
        assert_eq!(graph.len(), 3);
        assert_eq!(graph.edge_count(), 1);
        assert_eq!(graph.dependencies(TaskId(0)), &[TaskId(1)]);
        assert!(graph.dependencies(TaskId(2)).is_empty());
        assert_eq!(map.decode(TaskId(2)), (c0, 1));
        assert_eq!(map.len(), 3);
    }

    #[test]
    fn task_map_roundtrips() {
        let map = TaskMap {
            components: 4,
            failure_sets: 5,
        };
        assert_eq!(map.len(), 20);
        for c in 0..4 {
            for f in 0..5 {
                assert_eq!(map.decode(map.task(c, f)), (c, f));
            }
        }
    }
}
