//! Per-worker task deques with stealing.
//!
//! Each worker owns a deque: it pushes and pops at the back (LIFO — a task's
//! just-released dependents run immediately, while their dependency records
//! are still cache-hot), and thieves take from the front (FIFO — the oldest,
//! typically largest-subtree work migrates, which is the classic
//! work-stealing heuristic). The deques are simple mutex-protected
//! `VecDeque`s rather than lock-free Chase–Lev deques: verification tasks
//! are milliseconds to seconds of model checking, so queue operations are
//! nowhere near the contention point.

use crate::graph::TaskId;
use std::collections::VecDeque;
use std::sync::Mutex;

/// The set of per-worker deques.
#[derive(Debug)]
pub struct TaskQueue {
    queues: Vec<Mutex<VecDeque<TaskId>>>,
}

impl TaskQueue {
    /// Queues for `workers` workers.
    pub fn new(workers: usize) -> Self {
        TaskQueue {
            queues: (0..workers.max(1))
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
        }
    }

    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.queues.len()
    }

    /// Push a task onto `worker`'s deque (the hot end).
    pub fn push(&self, worker: usize, task: TaskId) {
        self.queues[worker]
            .lock()
            .expect("task queue poisoned")
            .push_back(task);
    }

    /// Pop `worker`'s most recently pushed task (LIFO).
    pub fn pop(&self, worker: usize) -> Option<TaskId> {
        self.queues[worker]
            .lock()
            .expect("task queue poisoned")
            .pop_back()
    }

    /// Steal the oldest task from any other worker's deque, scanning victims
    /// round-robin from `worker + 1`.
    pub fn steal(&self, worker: usize) -> Option<TaskId> {
        let n = self.queues.len();
        for offset in 1..n {
            let victim = (worker + offset) % n;
            let stolen = self.queues[victim]
                .lock()
                .expect("task queue poisoned")
                .pop_front();
            if stolen.is_some() {
                return stolen;
            }
        }
        None
    }

    /// Total queued tasks across all workers (a snapshot).
    pub fn queued(&self) -> usize {
        self.queues
            .iter()
            .map(|q| q.lock().expect("task queue poisoned").len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_pops_are_lifo() {
        let q = TaskQueue::new(2);
        q.push(0, TaskId(1));
        q.push(0, TaskId(2));
        assert_eq!(q.pop(0), Some(TaskId(2)));
        assert_eq!(q.pop(0), Some(TaskId(1)));
        assert_eq!(q.pop(0), None);
    }

    #[test]
    fn steals_are_fifo_from_other_workers() {
        let q = TaskQueue::new(3);
        q.push(1, TaskId(1));
        q.push(1, TaskId(2));
        assert_eq!(q.steal(0), Some(TaskId(1)), "steal takes the oldest");
        assert_eq!(q.pop(1), Some(TaskId(2)), "owner keeps the newest");
        assert_eq!(q.steal(0), None);
    }

    #[test]
    fn steal_scans_all_victims() {
        let q = TaskQueue::new(4);
        q.push(3, TaskId(9));
        assert_eq!(q.queued(), 1);
        assert_eq!(q.steal(0), Some(TaskId(9)));
        assert_eq!(q.queued(), 0);
    }

    #[test]
    fn single_worker_never_steals_from_itself() {
        let q = TaskQueue::new(1);
        q.push(0, TaskId(5));
        assert_eq!(q.steal(0), None);
        assert_eq!(q.pop(0), Some(TaskId(5)));
    }
}
