//! # plankton-engine
//!
//! The work-stealing parallel verification engine: Plankton's answer to the
//! paper's claim (§3.2) that *"equivalence classes are verified in parallel,
//! limited only by the number of available cores"*.
//!
//! The paper's prototype forks one model-checking **process** per packet
//! equivalence class and lets the operating system schedule them, with
//! converged outcomes exchanged through an in-memory filesystem. The seed
//! implementation approximated this with a level-barrier scheduler
//! ([`plankton_pec::Scheduler`]): dependency waves run strictly one after
//! another, so one slow component stalls every unrelated component in later
//! waves. This crate replaces the barriers with a dependency-counting task
//! graph driven by a fixed worker pool:
//!
//! * [`graph::TaskGraph`] — the (PEC-component × failure-scenario) cross
//!   product as a DAG; a task becomes runnable the moment the outcomes of
//!   *its own* dependencies land, while unrelated components keep running
//!   (§3.2's dependency-aware ordering without the barrier);
//! * [`queue::TaskQueue`] — per-worker deques with LIFO local pops (cache
//!   locality: a finished component's dependents run next on the same
//!   worker, right where their dependency records are hot) and FIFO steals
//!   from the busiest end of a victim's deque;
//! * [`executor::Engine`] — the worker pool: release-on-completion
//!   dependency accounting, an `AtomicBool` early-stop broadcast that makes
//!   the whole fleet drain as soon as one worker finds a violation (unless
//!   the caller asked for all violations), and an [`stats::EngineStats`]
//!   snapshot of what the pool did;
//! * [`interner::SharedRouteInterner`] — a concurrent sharded hash-consing
//!   table for [`Route`](plankton_protocols::Route)s, so the converged
//!   records stored for dependent PECs share one allocation per distinct
//!   route instead of cloning route paths per record (the cross-task
//!   analogue of the checker's per-run state hashing, §4.4);
//! * per-worker [`SearchScratch`](plankton_checker::SearchScratch) reuse —
//!   each worker hands the visited-set allocation of its previous
//!   model-checking run to the next one, killing the per-task allocation
//!   churn the naive scheduler paid.
//!
//! The engine is deliberately generic: it executes *tasks* identified by
//! [`graph::TaskId`] and knows nothing about PECs beyond the convenience
//! constructor [`graph::pec_task_graph`]. `plankton-core` owns the mapping
//! from tasks to verification work and the outcome store; the contract is
//! simply that a task's side effects (outcome insertion) are complete when
//! its closure returns, which is exactly when the engine releases its
//! dependents.

pub mod executor;
pub mod graph;
pub mod interner;
pub mod queue;
pub mod stats;

pub use executor::{Engine, WorkerContext};
pub use graph::{
    pec_task_graph, pec_task_graph_for, pec_task_graph_sparse, SparseTaskMap, TaskGraph, TaskId,
    TaskMap,
};
pub use interner::SharedRouteInterner;
pub use queue::TaskQueue;
pub use stats::{EngineStats, TaskFailure};
