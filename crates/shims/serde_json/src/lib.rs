//! Offline stand-in for `serde_json`: prints and parses JSON text for the
//! vendored `serde` shim's [`Value`] model.
//!
//! Supports exactly the API the workspace uses: [`to_string`],
//! [`to_string_pretty`], [`from_str`] and [`Error`]. Maps serialize as arrays
//! of `[key, value]` pairs (see the serde shim docs), which is valid JSON and
//! round-trips through [`from_str`].

use serde::{Deserialize, Serialize, Value};

/// JSON (de)serialization error.
pub type Error = serde::Error;

/// Serialize `value` to compact JSON text.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize `value` to human-indented JSON text.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parse a value of type `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    T::from_value(&v)
}

// ---------------------------------------------------------------------------
// Printing.
// ---------------------------------------------------------------------------

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    let pad = |out: &mut String, d: usize| {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * d));
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                out.push_str(&format!("{f}"));
                if f.fract() == 0.0 && !format!("{f}").contains(['e', '.']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            pad(out, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            pad(out, depth);
            out.push('}');
        }
    }
}

// ---------------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected input {other:?} at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error::msg(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.read_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: a low surrogate escape must
                                // follow (JSON encodes non-BMP characters as
                                // surrogate pairs).
                                if self.bytes.get(self.pos) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 1) != Some(&b'u')
                                {
                                    return Err(Error::msg("unpaired high surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.read_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::msg("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(Error::msg("unpaired low surrogate"));
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("bad \\u code point"))?,
                            );
                            continue;
                        }
                        other => {
                            return Err(Error::msg(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the whole run of plain bytes up to the next
                    // quote or escape, validating UTF-8 once per run — one
                    // validation per *character* would make parsing
                    // quadratic in the document size.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    out.push_str(run);
                }
            }
        }
    }

    /// Read exactly four hex digits at the cursor (the XXXX of `\uXXXX`).
    fn read_hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::msg("truncated \\u escape"))?;
        let code = u32::from_str_radix(
            std::str::from_utf8(hex).map_err(|_| Error::msg("bad \\u escape"))?,
            16,
        )
        .map_err(|_| Error::msg("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("bad number"))?;
        if !float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::msg(format!("bad number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected `,` or `]`, got {other:?} at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(Error::msg(format!(
                        "expected `,` or `}}`, got {other:?} at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars_and_collections() {
        let v = vec![1u32, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&s).unwrap(), v);

        let s = to_string(&Some("a\"b\n".to_string())).unwrap();
        assert_eq!(from_str::<Option<String>>(&s).unwrap().unwrap(), "a\"b\n");

        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<i64>("-12").unwrap(), -12);
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v: Vec<(String, u32)> = vec![("x".into(), 1), ("y".into(), 2)];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<(String, u32)>>(&pretty).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("12 garbage").is_err());
        assert!(from_str::<u32>("\"str\"").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            from_str::<String>("\"\\ud83d\\ude00\"").unwrap(),
            "\u{1F600}"
        );
        assert_eq!(from_str::<String>("\"\\u00e9x\"").unwrap(), "éx");
        assert!(from_str::<String>("\"\\ud83d\"").is_err(), "unpaired high");
        assert!(from_str::<String>("\"\\ude00\"").is_err(), "unpaired low");
        assert!(from_str::<String>("\"\\ud83d\\u0041\"").is_err());
    }
}
