//! `#[derive(Serialize, Deserialize)]` for the vendored offline `serde`
//! stand-in.
//!
//! The real serde_derive depends on `syn`/`quote`, which are not available in
//! this offline build environment, so this macro parses the item declaration
//! directly from the raw [`proc_macro::TokenStream`] and emits the impl as a
//! source string. It supports exactly the shapes the Plankton workspace uses:
//!
//! * structs with named fields (honoring `#[serde(skip)]`),
//! * tuple structs (newtypes serialize transparently, wider tuples as arrays),
//! * unit structs,
//! * enums with unit, tuple and struct variants (externally tagged).
//!
//! Generic type parameters are not supported and produce a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field: its name (`None` for tuple fields) and whether it is
/// marked `#[serde(skip)]` / `#[serde(default)]`.
struct Field {
    name: Option<String>,
    skip: bool,
    default: bool,
}

/// The body shape of a struct or enum variant.
enum Shape {
    Unit,
    Tuple(Vec<Field>),
    Named(Vec<Field>),
}

/// The parsed derive input.
enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<(String, Shape)>,
    },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, true)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, false)
}

fn expand(input: TokenStream, serialize: bool) -> TokenStream {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let item = match parse_item(&tokens) {
        Ok(item) => item,
        Err(msg) => {
            return format!("::core::compile_error!({msg:?});").parse().unwrap();
        }
    };
    let code = if serialize {
        gen_serialize(&item)
    } else {
        gen_deserialize(&item)
    };
    code.parse().unwrap()
}

// ---------------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------------

/// Skip attributes starting at `i`; returns `(skip, default)` for any
/// `#[serde(skip)]` / `#[serde(default)]` found.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) -> (bool, bool) {
    let mut skip = false;
    let mut default = false;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
                    if g.delimiter() == Delimiter::Bracket {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        if let Some(TokenTree::Ident(id)) = inner.first() {
                            if id.to_string() == "serde" {
                                if let Some(TokenTree::Group(args)) = inner.get(1) {
                                    let args = args.stream().to_string();
                                    if args.contains("skip") {
                                        skip = true;
                                    }
                                    if args.contains("default") {
                                        default = true;
                                    }
                                }
                            }
                        }
                        *i += 2;
                        continue;
                    }
                }
                break;
            }
            _ => break,
        }
    }
    (skip, default)
}

/// Skip a visibility qualifier (`pub`, `pub(crate)`, ...).
fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = tokens.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Skip type tokens until a top-level comma (consumed) or the end, tracking
/// angle-bracket depth so commas inside generics don't terminate the field.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (skip, default) = skip_attrs(&tokens, &mut i);
        skip_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field `{name}`, got {other:?}")),
        }
        skip_type(&tokens, &mut i);
        fields.push(Field {
            name: Some(name),
            skip,
            default,
        });
    }
    Ok(fields)
}

fn parse_tuple_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (skip, default) = skip_attrs(&tokens, &mut i);
        skip_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        fields.push(Field {
            name: None,
            skip,
            default,
        });
    }
    Ok(fields)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<(String, Shape)>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(parse_tuple_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Named(parse_named_fields(g.stream())?)
            }
            _ => Shape::Unit,
        };
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            } else if p.as_char() == '=' {
                return Err("enum discriminants are not supported".to_string());
            }
        }
        variants.push((name, shape));
    }
    Ok(variants)
}

fn parse_item(tokens: &[TokenTree]) -> Result<Item, String> {
    let mut i = 0;
    skip_attrs(tokens, &mut i);
    skip_vis(tokens, &mut i);
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "the vendored serde derive does not support generic type `{name}`"
            ));
        }
    }
    match kind.as_str() {
        "struct" => {
            let shape = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(parse_tuple_fields(g.stream())?)
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
                other => return Err(format!("unexpected struct body: {other:?}")),
            };
            Ok(Item::Struct { name, shape })
        }
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                name,
                variants: parse_variants(g.stream())?,
            }),
            other => Err(format!("unexpected enum body: {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

// ---------------------------------------------------------------------------
// Code generation.
// ---------------------------------------------------------------------------

/// Serialize expression for a shape, given an accessor prefix producing each
/// field expression (`&self.x` for structs, `__b0` bindings for enums).
fn ser_named(fields: &[Field], access: impl Fn(&str) -> String) -> String {
    let mut out = String::from(
        "{ let mut __f: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
         ::std::vec::Vec::new();",
    );
    for f in fields {
        if f.skip {
            continue;
        }
        let name = f.name.as_deref().unwrap();
        out.push_str(&format!(
            "__f.push((::std::string::String::from({name:?}), \
             ::serde::Serialize::to_value({})));",
            access(name)
        ));
    }
    out.push_str("::serde::Value::Object(__f) }");
    out
}

fn ser_tuple(fields: &[Field], access: impl Fn(usize) -> String) -> String {
    let live: Vec<usize> = fields
        .iter()
        .enumerate()
        .filter(|(_, f)| !f.skip)
        .map(|(i, _)| i)
        .collect();
    if live.len() == 1 && fields.len() == 1 {
        // Newtype: transparent.
        return format!("::serde::Serialize::to_value({})", access(live[0]));
    }
    let items: Vec<String> = live
        .iter()
        .map(|&i| format!("::serde::Serialize::to_value({})", access(i)))
        .collect();
    format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => "::serde::Value::Null".to_string(),
                Shape::Named(fields) => ser_named(fields, |f| format!("&self.{f}")),
                Shape::Tuple(fields) => ser_tuple(fields, |i| format!("&self.{i}")),
            };
            format!(
                "impl ::serde::Serialize for {name} {{ \
                 fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (vname, shape) in variants {
                match shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::Str(\
                         ::std::string::String::from({vname:?})),"
                    )),
                    Shape::Tuple(fields) => {
                        let binds: Vec<String> =
                            (0..fields.len()).map(|i| format!("__b{i}")).collect();
                        let inner = ser_tuple(fields, |i| format!("__b{i}"));
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from({vname:?}), {inner})]),",
                            binds.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone().unwrap()).collect();
                        let inner = ser_named(fields, |f| f.to_string());
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from({vname:?}), {inner})]),",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{ \
                 fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }} }}"
            )
        }
    }
}

/// Deserialize constructor body for named fields out of value expr `__v`.
fn de_named(type_path: &str, fields: &[Field], src: &str) -> String {
    let mut inits = String::new();
    for f in fields {
        let name = f.name.as_deref().unwrap();
        if f.skip {
            inits.push_str(&format!("{name}: ::std::default::Default::default(),"));
        } else if f.default {
            inits.push_str(&format!(
                "{name}: ::serde::__get_field_or_default({src}, {name:?})?,"
            ));
        } else {
            inits.push_str(&format!("{name}: ::serde::__get_field({src}, {name:?})?,"));
        }
    }
    format!("::std::result::Result::Ok({type_path} {{ {inits} }})")
}

fn de_tuple(type_path: &str, fields: &[Field], src: &str) -> String {
    let live: Vec<usize> = fields
        .iter()
        .enumerate()
        .filter(|(_, f)| !f.skip)
        .map(|(i, _)| i)
        .collect();
    let mut args = Vec::new();
    let mut live_idx = 0usize;
    for (i, f) in fields.iter().enumerate() {
        if f.skip {
            args.push("::std::default::Default::default()".to_string());
        } else if live.len() == 1 && fields.len() == 1 {
            args.push(format!("::serde::Deserialize::from_value({src})?"));
        } else {
            let _ = i;
            args.push(format!("::serde::__get_index({src}, {live_idx})?"));
            live_idx += 1;
        }
    }
    format!(
        "::std::result::Result::Ok({type_path}({}))",
        args.join(", ")
    )
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => format!("::std::result::Result::Ok({name})"),
                Shape::Named(fields) => de_named(name, fields, "__v"),
                Shape::Tuple(fields) => de_tuple(name, fields, "__v"),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{ \
                 fn from_value(__v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{ {body} }} }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for (vname, shape) in variants {
                match shape {
                    Shape::Unit => {
                        unit_arms.push_str(&format!(
                            "{vname:?} => ::std::result::Result::Ok({name}::{vname}),"
                        ));
                        // Tolerate the tagged form {"Name": null} as well.
                        tagged_arms.push_str(&format!(
                            "{vname:?} => ::std::result::Result::Ok({name}::{vname}),"
                        ));
                    }
                    Shape::Tuple(fields) => {
                        let body = de_tuple(&format!("{name}::{vname}"), fields, "__inner");
                        tagged_arms.push_str(&format!("{vname:?} => {body},"));
                    }
                    Shape::Named(fields) => {
                        let body = de_named(&format!("{name}::{vname}"), fields, "__inner");
                        tagged_arms.push_str(&format!("{vname:?} => {body},"));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{ \
                 fn from_value(__v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{ \
                 match __v {{ \
                 ::serde::Value::Str(__s) => match __s.as_str() {{ {unit_arms} \
                   __other => ::std::result::Result::Err(::serde::Error::msg(\
                   ::std::format!(\"unknown {name} variant {{__other}}\"))) }}, \
                 ::serde::Value::Object(__fields) if __fields.len() == 1 => {{ \
                   let (__tag, __inner) = &__fields[0]; \
                   match __tag.as_str() {{ {tagged_arms} \
                   __other => ::std::result::Result::Err(::serde::Error::msg(\
                   ::std::format!(\"unknown {name} variant {{__other}}\"))) }} }}, \
                 __other => ::std::result::Result::Err(::serde::Error::msg(\
                 \"expected enum representation\")) }} }} }}"
            )
        }
    }
}
