//! Offline stand-in for the `serde` crate.
//!
//! This build environment has no access to a crate registry, so the workspace
//! vendors a minimal serialization framework under the `serde` name. It keeps
//! the public surface the Plankton crates actually use — the `Serialize` /
//! `Deserialize` derive pair plus JSON conversion through `serde_json` — but
//! is implemented over an explicit [`Value`] tree instead of serde's
//! visitor machinery:
//!
//! * `#[derive(Serialize, Deserialize)]` (from the companion `serde_derive`
//!   proc-macro crate) generates [`Serialize::to_value`] /
//!   [`Deserialize::from_value`] impls;
//! * `#[serde(skip)]` on a field omits it when serializing and fills it with
//!   `Default::default()` when deserializing;
//! * `#[serde(default)]` on a field serializes normally but tolerates the
//!   field being absent (or null) on deserialization, filling it with
//!   `Default::default()` — for backward-compatible schema growth;
//! * newtype structs serialize transparently as their inner value, tuple
//!   structs as arrays, enums in serde's externally-tagged form;
//! * maps serialize as arrays of `[key, value]` pairs so non-string keys
//!   round-trip without a string conversion.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;
use std::rc::Rc;
use std::sync::Arc;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the data model everything serializes through.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// A new error with the given message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can convert themselves into a [`Value`].
pub trait Serialize {
    /// The value-tree form of `self`.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Parse `self` out of a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

fn unexpected<T>(expected: &str, got: &Value) -> Result<T, Error> {
    Err(Error::msg(format!(
        "expected {expected}, got {}",
        got.type_name()
    )))
}

// ---------------------------------------------------------------------------
// Derive-support helpers (referenced by serde_derive-generated code).
// ---------------------------------------------------------------------------

/// Fetch and deserialize a struct field; missing fields deserialize from
/// `Null` so `Option` fields tolerate omission.
pub fn __get_field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    match v.get(name) {
        Some(field) => T::from_value(field).map_err(|e| Error::msg(format!("field `{name}`: {e}"))),
        None => {
            T::from_value(&Value::Null).map_err(|_| Error::msg(format!("missing field `{name}`")))
        }
    }
}

/// Fetch and deserialize a struct field marked `#[serde(default)]`: a
/// missing (or null) field falls back to `Default::default()` instead of
/// erroring, so added fields stay backward-compatible with old documents.
pub fn __get_field_or_default<T: Deserialize + Default>(v: &Value, name: &str) -> Result<T, Error> {
    match v.get(name) {
        Some(Value::Null) | None => Ok(T::default()),
        Some(field) => T::from_value(field).map_err(|e| Error::msg(format!("field `{name}`: {e}"))),
    }
}

/// Fetch and deserialize a positional (tuple) field.
pub fn __get_index<T: Deserialize>(v: &Value, idx: usize) -> Result<T, Error> {
    match v {
        Value::Array(items) => match items.get(idx) {
            Some(item) => {
                T::from_value(item).map_err(|e| Error::msg(format!("element {idx}: {e}")))
            }
            None => Err(Error::msg(format!("missing tuple element {idx}"))),
        },
        other => unexpected("array", other),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls.
// ---------------------------------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg("integer out of range")),
                    Value::Int(n) => u64::try_from(*n)
                        .ok()
                        .and_then(|n| <$t>::try_from(n).ok())
                        .ok_or_else(|| Error::msg("integer out of range")),
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => Ok(*f as $t),
                    other => unexpected("unsigned integer", other),
                }
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg("integer out of range")),
                    Value::UInt(n) => i64::try_from(*n)
                        .ok()
                        .and_then(|n| <$t>::try_from(n).ok())
                        .ok_or_else(|| Error::msg("integer out of range")),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    other => unexpected("integer", other),
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Float(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(n) => Ok(*n as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    other => unexpected("number", other),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => unexpected("bool", other),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => unexpected("string", other),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => unexpected("single-character string", other),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(_: &Value) -> Result<Self, Error> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Reference / smart-pointer impls.
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Arc::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Rc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Rc<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Rc::new)
    }
}

// ---------------------------------------------------------------------------
// Option / collections / tuples.
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => unexpected("array", other),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => unexpected("array", other),
        }
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => unexpected("array", other),
        }
    }
}

fn map_to_value<'a, K: Serialize + 'a, V: Serialize + 'a>(
    entries: impl Iterator<Item = (&'a K, &'a V)>,
) -> Value {
    Value::Array(
        entries
            .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
            .collect(),
    )
}

fn map_entry<K: Deserialize, V: Deserialize>(item: &Value) -> Result<(K, V), Error> {
    match item {
        Value::Array(pair) if pair.len() == 2 => {
            Ok((K::from_value(&pair[0])?, V::from_value(&pair[1])?))
        }
        other => unexpected("[key, value] pair", other),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(map_entry).collect(),
            other => unexpected("array of pairs", other),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter())
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(map_entry).collect(),
            other => unexpected("array of pairs", other),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => Ok(($(
                        $t::from_value(
                            items.get($i).ok_or_else(|| Error::msg("tuple too short"))?
                        )?,
                    )+)),
                    other => unexpected("array", other),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A:0)
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn options_and_collections_roundtrip() {
        let v: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&v.to_value()).unwrap(), None);
        let xs = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&xs.to_value()).unwrap(), xs);
        let mut m = BTreeMap::new();
        m.insert(3u32, "x".to_string());
        assert_eq!(
            BTreeMap::<u32, String>::from_value(&m.to_value()).unwrap(),
            m
        );
    }

    #[test]
    fn missing_field_is_null_for_options() {
        let obj = Value::Object(vec![]);
        let got: Option<u32> = __get_field(&obj, "absent").unwrap();
        assert_eq!(got, None);
        assert!(__get_field::<u32>(&obj, "absent").is_err());
    }
}
