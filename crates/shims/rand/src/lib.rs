//! Offline stand-in for the `rand` crate.
//!
//! Provides a deterministic [`rngs::StdRng`] (xoshiro256++ seeded through
//! SplitMix64) and the small API surface the workspace uses:
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over `Range` /
//! `RangeInclusive`, [`Rng::gen_bool`], and
//! [`seq::SliceRandom::choose_multiple`]. All generators in this workspace
//! are seeded, so determinism — not statistical quality — is the contract
//! that matters; xoshiro256++ is nevertheless a solid generator.

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The user-facing RNG methods.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly random value in `range` (`low..high` or `low..=high`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        let (lo, hi_inclusive) = range.bounds();
        T::sample_between(self.next_u64(), lo, hi_inclusive)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

/// Integer types [`Rng::gen_range`] can produce.
pub trait SampleUniform: Copy + PartialOrd {
    /// Map 64 random bits into `[lo, hi]` (inclusive).
    fn sample_between(bits: u64, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between(bits: u64, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (bits as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// The `(low, high_inclusive)` bounds.
    fn bounds(&self) -> (T, T);
}

impl<T: SampleUniform + Dec> SampleRange<T> for Range<T> {
    fn bounds(&self) -> (T, T) {
        (self.start, self.end.dec())
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn bounds(&self) -> (T, T) {
        (*self.start(), *self.end())
    }
}

/// Decrement helper for converting exclusive to inclusive upper bounds.
pub trait Dec {
    /// `self - 1`, panicking on an empty `low..low` range's underflow only
    /// when actually sampled.
    fn dec(self) -> Self;
}

macro_rules! impl_dec {
    ($($t:ty),*) => {$(
        impl Dec for $t {
            fn dec(self) -> Self {
                self.checked_sub(1).expect("gen_range: empty range")
            }
        }
    )*};
}

impl_dec!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand does for small seeds.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Random selections from slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// `amount` distinct elements chosen uniformly, in random order.
        fn choose_multiple<R: Rng>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose_multiple<R: Rng>(&self, rng: &mut R, amount: usize) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            let mut indices: Vec<usize> = (0..self.len()).collect();
            // Partial Fisher-Yates: the first `amount` entries become the
            // selection.
            for i in 0..amount {
                let j = i + (rng.next_u64() as usize) % (indices.len() - i);
                indices.swap(i, j);
            }
            indices[..amount]
                .iter()
                .map(|&i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_are_honored() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(1..=10);
            assert!((1..=10).contains(&x));
            let y: usize = rng.gen_range(0..3);
            assert!(y < 3);
            let z: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&z));
        }
    }

    #[test]
    fn gen_bool_probability_is_sane() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits: {hits}");
    }

    #[test]
    fn choose_multiple_picks_distinct() {
        let mut rng = StdRng::seed_from_u64(3);
        let xs = [1, 2, 3, 4, 5];
        let picked: Vec<i32> = xs.choose_multiple(&mut rng, 3).cloned().collect();
        assert_eq!(picked.len(), 3);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3);
    }
}
