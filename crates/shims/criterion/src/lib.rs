//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API the workspace benches use —
//! `Criterion::benchmark_group`, `sample_size`, `bench_function`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros —
//! with a simple measure-and-print harness: each benchmark runs a warm-up
//! iteration plus `sample_size` timed iterations and reports the median.
//! No statistics, plots or baselines; just honest wall-clock numbers.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: self.default_sample_size,
        }
    }

    /// Register a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let n = self.default_sample_size;
        run_one(&id.into(), n, f);
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c Criterion,
    name: String,
    sample_size: usize,
}

impl<'c> BenchmarkGroup<'c> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Measure one benchmark function.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&id, self.sample_size, f);
        self
    }

    /// Finish the group (printing is incremental; this is a no-op).
    pub fn finish(self) {}
}

fn run_one<F>(id: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        durations: Vec::with_capacity(samples + 1),
    };
    // One warm-up plus the timed samples.
    for _ in 0..=samples {
        f(&mut bencher);
    }
    bencher.durations.remove(0);
    bencher.durations.sort_unstable();
    let median = bencher
        .durations
        .get(bencher.durations.len() / 2)
        .copied()
        .unwrap_or(Duration::ZERO);
    println!("  {id}: median {:?} over {} samples", median, samples);
}

/// Passed to each benchmark function; measures the closure under `iter`.
pub struct Bencher {
    durations: Vec<Duration>,
}

impl Bencher {
    /// Time one execution of `f` (criterion batches; this shim times single
    /// runs, which is adequate for the coarse workloads measured here).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.durations.push(start.elapsed());
    }
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
