//! Offline stand-in for `parking_lot`: thin wrappers over the std primitives
//! exposing parking_lot's non-poisoning API (`lock()` returns the guard
//! directly). Poisoning is handled by propagating the inner value, matching
//! parking_lot's semantics of simply continuing after a panicking holder.

use std::sync;

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Acquire the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader-writer lock whose methods never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

/// Read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// A new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }
}
