//! Differential tests for the incremental explorer.
//!
//! The incremental inner loop (delta-maintained enabled sets, apply/undo
//! DFS, handle-native visited checks) must be a pure performance change: on
//! every scenario it has to produce a `VerificationReport` byte-identical to
//! the pre-change clone-based search (`ReferenceChecker`, selected with
//! `PlanktonOptions::with_reference_explorer`), including exact
//! `SearchStats` — the only allowed difference being the two
//! incremental-only observability counters, which the reference leaves at 0.

use plankton::checker::SearchStats;
use plankton::config::scenarios::{
    disagree_gadget, fat_tree_bgp_rfc7938, fat_tree_ospf, isp_ibgp_over_ospf, isp_ospf, ring_ospf,
    CoreStaticRoutes,
};
use plankton::net::generators::as_topo::AsTopologySpec;
use plankton::prelude::*;
use plankton::protocols::bgp::{BgpModel, UniformUnderlay};
use plankton::protocols::rpvp::{IncrementalEnabled, Rpvp};
use plankton::protocols::{ProtocolModel, RouteHandle, RouteInterner};
use std::sync::Arc;

/// A tiny deterministic PRNG (xorshift64*) so the "random" failure sets and
/// walks are reproducible without an RNG dependency.
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        Lcg(seed.max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// A seeded random subset of the network's links, to drive `up_to_among`.
fn random_links(network: &Network, count: usize, seed: u64) -> Vec<LinkId> {
    let mut rng = Lcg::new(seed);
    let all: Vec<LinkId> = network.topology.links().iter().map(|l| l.id).collect();
    let mut picked = Vec::new();
    for _ in 0..count.min(all.len()) {
        loop {
            let l = all[rng.below(all.len())];
            if !picked.contains(&l) {
                picked.push(l);
                break;
            }
        }
    }
    picked
}

/// Serialize a report for comparison: the shared normalization (engine pool
/// stats nulled) plus zeroing the incremental-only stats counters, which the
/// reference explorer leaves at 0.
fn normalized(report: &VerificationReport) -> String {
    let mut r = report.clone();
    r.stats = r.stats.without_incremental_counters();
    r.normalized_json()
}

/// Run the same verification through the reference explorer (sequential),
/// the incremental explorer (sequential) and the incremental explorer on
/// the parallel engine, and assert all three reports are identical.
fn assert_differential(
    label: &str,
    network: &Network,
    policy: &dyn plankton::policy::Policy,
    scenario: &FailureScenario,
    options: PlanktonOptions,
) {
    let plankton = Plankton::new(network.clone());
    let reference = plankton.verify(
        policy,
        scenario,
        &options.clone().sequential().with_reference_explorer(),
    );
    let incremental_seq = plankton.verify(policy, scenario, &options.clone().sequential());
    let incremental_par = {
        let mut par = options.clone();
        par.parallelism = 4;
        plankton.verify(policy, scenario, &par)
    };
    assert_eq!(
        reference.stats.enabled_recomputed_nodes, 0,
        "{label}: reference must not delta-maintain"
    );
    if reference.stats.steps > 0 {
        assert!(
            incremental_seq.stats.enabled_recomputed_nodes > 0,
            "{label}: incremental counters must be live"
        );
    }
    assert_eq!(
        normalized(&reference),
        normalized(&incremental_seq),
        "{label}: sequential incremental report differs from pre-change behavior"
    );
    assert_eq!(
        normalized(&reference),
        normalized(&incremental_par),
        "{label}: parallel incremental report differs from pre-change behavior"
    );
}

#[test]
fn ring_reachability_matches_reference_under_random_failures() {
    let s = ring_ospf(8);
    let sources: Vec<NodeId> = s.ring.routers[1..].to_vec();
    for seed in [11u64, 23, 47] {
        let links = random_links(&s.network, 4, seed);
        assert_differential(
            &format!("ring seed {seed}"),
            &s.network,
            &Reachability::new(sources.clone()),
            &FailureScenario::up_to_among(2, links),
            PlanktonOptions::with_cores(1)
                .restricted_to(vec![s.destination])
                .without_lec_pruning()
                .collect_all_violations(),
        );
    }
}

#[test]
fn fat_tree_loop_policy_matches_reference_under_random_failures() {
    for (mode, label, seed) in [
        (CoreStaticRoutes::MatchingOspf, "pass", 7u64),
        (CoreStaticRoutes::Looping, "fail", 8u64),
    ] {
        let s = fat_tree_ospf(4, mode);
        let links = random_links(&s.network, 3, seed);
        assert_differential(
            &format!("fat tree ({label})"),
            &s.network,
            &LoopFreedom::everywhere(),
            &FailureScenario::up_to_among(1, links),
            PlanktonOptions::with_cores(1).collect_all_violations(),
        );
    }
}

#[test]
fn disagree_gadget_matches_reference() {
    let g = disagree_gadget();
    for seed in [3u64, 5] {
        let links = random_links(&g.network, 2, seed);
        assert_differential(
            &format!("disagree seed {seed}"),
            &g.network,
            &Reachability::new(g.actors.clone()),
            &FailureScenario::up_to_among(1, links),
            PlanktonOptions::with_cores(1)
                .restricted_to(vec![g.destination])
                .collect_all_violations(),
        );
    }
}

#[test]
fn fat_tree_k8_scale_matches_reference_under_random_failures() {
    // The AS-scale bench tier's fat-tree workload (k=8, 80 switches), at a
    // test-sized failure set: byte-identical reports and exact stats.
    let s = fat_tree_ospf(8, CoreStaticRoutes::None);
    let sources: Vec<NodeId> = s.network.topology.node_ids().collect();
    let links = random_links(&s.network, 3, 0xA5);
    assert_differential(
        "fat tree k=8",
        &s.network,
        &Reachability::new(sources),
        &FailureScenario::up_to_among(1, links),
        PlanktonOptions::with_cores(1)
            .restricted_to(vec![s.destinations[0]])
            .without_lec_pruning()
            .collect_all_violations(),
    );
}

#[test]
fn isp_scale_matches_reference() {
    // The AS-scale bench tier's ISP workload: a 1000-router synthetic AS,
    // all-node reachability to one customer prefix.
    let s = isp_ospf(&AsTopologySpec::scale(1000));
    let sources: Vec<NodeId> = s.network.topology.node_ids().collect();
    assert_differential(
        "ISP-1000",
        &s.network,
        &Reachability::new(sources),
        &FailureScenario::no_failures(),
        PlanktonOptions::with_cores(1)
            .restricted_to(vec![s.destinations[0]])
            .without_lec_pruning()
            .collect_all_violations(),
    );
}

#[test]
fn ibgp_dependencies_match_reference() {
    let s = isp_ibgp_over_ospf(&AsTopologySpec::paper_as(3967));
    assert_differential(
        "iBGP over OSPF",
        &s.network,
        &Reachability::new(s.network.topology.node_ids().collect()),
        &FailureScenario::no_failures(),
        PlanktonOptions::with_cores(1)
            .restricted_to(s.bgp_destinations.clone())
            .collect_all_violations(),
    );
}

#[test]
fn aggregated_stats_agree_between_explorers_beyond_the_new_counters() {
    // Spot-check that the normalization really only hides the two new
    // counters: every pre-existing field must match exactly.
    let s = ring_ospf(6);
    let sources: Vec<NodeId> = s.ring.routers[1..].to_vec();
    let plankton = Plankton::new(s.network.clone());
    let run = |opts: PlanktonOptions| {
        plankton.verify(
            &Reachability::new(sources.clone()),
            &FailureScenario::up_to(1),
            &opts
                .restricted_to(vec![s.destination])
                .collect_all_violations(),
        )
    };
    let reference = run(PlanktonOptions::with_cores(1).with_reference_explorer());
    let incremental = run(PlanktonOptions::with_cores(1));
    let a: SearchStats = reference.stats;
    let b: SearchStats = incremental.stats;
    assert_eq!(a.steps, b.steps);
    assert_eq!(a.branch_points, b.branch_points);
    assert_eq!(a.branches, b.branches);
    assert_eq!(a.pruned_inconsistent, b.pruned_inconsistent);
    assert_eq!(a.pruned_by_policy, b.pruned_by_policy);
    assert_eq!(a.pruned_visited, b.pruned_visited);
    assert_eq!(a.converged_states, b.converged_states);
    assert_eq!(a.deterministic_steps, b.deterministic_steps);
    assert_eq!(a.max_depth, b.max_depth);
    assert_eq!(a.interned_routes, b.interned_routes);
    assert_eq!(a.visited_states, b.visited_states);
    assert_eq!(a.approx_memory_bytes, b.approx_memory_bytes);
    assert_eq!(a.truncated, b.truncated);
    assert!(b.undo_depth_max > 0);
}

/// The delta-maintained enabled set must match a from-scratch
/// `Rpvp::enabled()` after every step of a random walk through a
/// branching-heavy BGP instance (200 steps total, restarting from the
/// initial state whenever an execution converges).
#[test]
fn incremental_enabled_matches_full_recompute_on_random_walk() {
    let s = fat_tree_bgp_rfc7938(4, 1);
    let origin = s.fat_tree.edge[0][0];
    let prefix = s.fat_tree.prefix_of_edge(origin).expect("edge prefix");
    let model = BgpModel::new(
        &s.network,
        prefix,
        vec![origin],
        &FailureSet::none(),
        Arc::new(UniformUnderlay),
    );
    let rpvp = Rpvp::new(&model);
    let eligible: Vec<bool> = (0..model.node_count())
        .map(|i| !rpvp.is_origin(NodeId(i as u32)))
        .collect();
    let mut rng = Lcg::new(0xFEED);
    let mut interner = RouteInterner::new();
    let mut state = rpvp.initial_state(&mut interner);
    let mut inc = IncrementalEnabled::new(model.reverse_peers(), eligible.clone());
    inc.rebuild(&rpvp, &state, &mut interner);
    let mut displaced = Vec::new();
    let mut steps = 0usize;
    while steps < 200 {
        let enabled = inc.view().to_vec();
        if enabled.is_empty() {
            state = rpvp.initial_state(&mut interner);
            inc.rebuild(&rpvp, &state, &mut interner);
            continue;
        }
        // Pick a random enabled node and a random alternative (one of its
        // best updates, or the invalid-path clear when it has none —
        // `RouteHandle::NONE` requests the clear).
        let choice = enabled[rng.below(enabled.len())].clone();
        let adopt = if choice.best_updates.is_empty() {
            RouteHandle::NONE
        } else {
            choice.best_updates[rng.below(choice.best_updates.len())].1
        };
        let prev_best = rpvp.step_adopting(&mut state, &interner, choice.node, adopt);
        displaced.clear();
        inc.refresh_after_step(&rpvp, &state, &mut interner, choice.node, &mut displaced);
        assert_eq!(
            inc.view().to_vec(),
            rpvp.enabled(&state, &mut interner),
            "delta-maintained enabled set diverged after step {steps} at {}",
            choice.node
        );
        // Every other step, also exercise the undo path: revert the step,
        // check the enabled set against a full recompute again, then redo.
        if steps % 2 == 1 {
            rpvp.undo_step(&mut state, choice.node, prev_best);
            for (node, entry) in displaced.drain(..).rev() {
                inc.set_entry(node, entry);
            }
            assert_eq!(
                inc.view().to_vec(),
                rpvp.enabled(&state, &mut interner),
                "undo diverged after step {steps}"
            );
            rpvp.step_adopting(&mut state, &interner, choice.node, adopt);
            inc.refresh_after_step(&rpvp, &state, &mut interner, choice.node, &mut displaced);
        }
        steps += 1;
    }
    assert!(inc.recompute_count() > 0);
}
