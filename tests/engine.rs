//! Integration tests for the work-stealing verification engine: the engine
//! path must be a drop-in replacement for the legacy level-barrier scheduler
//! (identical reports), must honor dependency ordering through the outcome
//! store, and must drain the remaining task fleet on the first violation.

use plankton::net::generators::as_topo::AsTopologySpec;
use plankton::prelude::*;

#[test]
fn parallel_report_equals_sequential_on_ring() {
    let s = plankton::config::scenarios::ring_ospf(8);
    let sources: Vec<NodeId> = s.ring.routers[1..].to_vec();
    let plankton = Plankton::new(s.network.clone());
    let run = |options: PlanktonOptions| {
        plankton.verify(
            &Reachability::new(sources.clone()),
            &FailureScenario::up_to(2),
            &options
                .restricted_to(vec![s.destination])
                .without_lec_pruning()
                .collect_all_violations(),
        )
    };
    let sequential = run(PlanktonOptions::with_cores(1).sequential());
    let parallel = run(PlanktonOptions::with_cores(4));

    assert_eq!(sequential.holds(), parallel.holds());
    assert_eq!(
        sequential.stats, parallel.stats,
        "search work must be identical"
    );
    assert_eq!(sequential.data_planes_checked, parallel.data_planes_checked);
    assert_eq!(sequential.pecs_verified, parallel.pecs_verified);
    assert_eq!(
        sequential.failure_sets_explored,
        parallel.failure_sets_explored
    );
    assert_eq!(
        serde_json::to_string(&sequential.violations).unwrap(),
        serde_json::to_string(&parallel.violations).unwrap(),
        "sorted violation lists must match exactly"
    );
    let engine = parallel.engine.expect("engine stats present");
    assert_eq!(engine.tasks_executed, engine.tasks_total as u64);
    assert_eq!(engine.tasks_pending, 0);
}

#[test]
fn parallel_report_equals_sequential_on_fat_tree() {
    use plankton::config::scenarios::{fat_tree_ospf, CoreStaticRoutes};
    let s = fat_tree_ospf(4, CoreStaticRoutes::Looping);
    let plankton = Plankton::new(s.network.clone());
    let run = |options: PlanktonOptions| {
        plankton.verify(
            &LoopFreedom::everywhere(),
            &FailureScenario::no_failures(),
            &options.collect_all_violations(),
        )
    };
    let sequential = run(PlanktonOptions::with_cores(1).sequential());
    let parallel = run(PlanktonOptions::with_cores(4));

    assert!(!sequential.holds() && !parallel.holds());
    assert_eq!(sequential.stats, parallel.stats);
    assert_eq!(sequential.data_planes_checked, parallel.data_planes_checked);
    assert_eq!(
        serde_json::to_string(&sequential.violations).unwrap(),
        serde_json::to_string(&parallel.violations).unwrap()
    );
}

/// Dependency ordering end to end: iBGP destination PECs can only converge
/// if the loopback PECs' outcomes were stored before the dependent tasks
/// ran. A scheduling bug would leave the iBGP sessions down and flip the
/// reachability verdict.
#[test]
fn engine_honors_ibgp_dependencies() {
    use plankton::config::scenarios::isp_ibgp_over_ospf;
    let s = isp_ibgp_over_ospf(&AsTopologySpec::paper_as(3967));
    let plankton = Plankton::new(s.network.clone());
    assert!(
        plankton.dependencies().graph.edge_count() > 0,
        "scenario must actually have cross-PEC dependencies"
    );
    let run = |options: PlanktonOptions| {
        plankton.verify(
            &Reachability::new(s.network.topology.node_ids().collect()),
            &FailureScenario::no_failures(),
            &options
                .restricted_to(s.bgp_destinations.clone())
                .collect_all_violations(),
        )
    };
    let sequential = run(PlanktonOptions::with_cores(1).sequential());
    let parallel = run(PlanktonOptions::with_cores(4));
    assert_eq!(sequential.holds(), parallel.holds());
    assert_eq!(sequential.stats, parallel.stats);
    assert_eq!(
        serde_json::to_string(&sequential.violations).unwrap(),
        serde_json::to_string(&parallel.violations).unwrap()
    );
}

/// Early stop: under stop-at-first-violation semantics the violation must
/// halt the remaining task fleet (drained as "skipped"), not run it to
/// completion.
#[test]
fn early_stop_halts_remaining_tasks() {
    use plankton::config::scenarios::{fat_tree_ospf, CoreStaticRoutes};
    let s = fat_tree_ospf(4, CoreStaticRoutes::Looping);
    let plankton = Plankton::new(s.network.clone());
    let report = plankton.verify(
        &LoopFreedom::everywhere(),
        &FailureScenario::no_failures(),
        &PlanktonOptions::with_cores(1), // stop_at_first_violation is the default
    );
    assert!(!report.holds());
    let engine = report.engine.expect("engine stats present");
    assert!(
        engine.tasks_skipped > 0,
        "violation must drain the remaining fleet: {engine}"
    );
    assert_eq!(
        engine.tasks_executed + engine.tasks_skipped,
        engine.tasks_total as u64,
        "every task accounted for: {engine}"
    );
    assert_eq!(engine.tasks_pending, 0);

    // The all-violations mode, in contrast, runs every task.
    let full = plankton.verify(
        &LoopFreedom::everywhere(),
        &FailureScenario::no_failures(),
        &PlanktonOptions::with_cores(1).collect_all_violations(),
    );
    let engine = full.engine.expect("engine stats present");
    assert_eq!(engine.tasks_skipped, 0);
    assert!(full.violations.len() >= report.violations.len());
}

/// The per-worker scratch actually gets reused across a multi-task run.
#[test]
fn engine_reuses_search_scratch() {
    use plankton::config::scenarios::{fat_tree_ospf, CoreStaticRoutes};
    let s = fat_tree_ospf(4, CoreStaticRoutes::MatchingOspf);
    let plankton = Plankton::new(s.network.clone());
    let report = plankton.verify(
        &LoopFreedom::everywhere(),
        &FailureScenario::no_failures(),
        &PlanktonOptions::with_cores(2),
    );
    assert!(report.holds(), "{report}");
    let engine = report.engine.expect("engine stats present");
    assert!(
        engine.scratch_reuses > 0,
        "visited-set allocations must be reused across runs: {engine}"
    );
    assert!(engine.interned_routes > 0 || plankton.dependencies().graph.edge_count() == 0);
}
