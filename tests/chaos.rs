//! Chaos and graceful-degradation tests: the daemon under injected faults.
//!
//! Every test drives a fault through the `plankton_faultinject` failpoint
//! crate (in-process via `configure`, in spawned daemons via the
//! `PLANKTON_FAILPOINTS` env var) and asserts the *survivability contract*:
//!
//! - a fault produces a structured `Error {kind}` response, never a crash
//!   and never a wrong report;
//! - partial results of an abandoned run are not cached and not served;
//! - the very next clean request succeeds, and its report is identical to
//!   what an unfaulted daemon computes;
//! - a damaged persisted cache degrades to a cold start, never to a crash
//!   or a wrong warm answer.
//!
//! Failpoints are process-global, so the in-process tests serialize on one
//! mutex; the spawned-process tests are isolated by construction (the env
//! var only reaches the child).

use plankton::config::scenarios::ring_ospf;
use plankton::service::{error_kind, PolicySpec, Request, Response, ServiceSession, VerifyOptions};
use std::sync::Mutex;

/// Serializes every in-process test that arms failpoints (the table is
/// process-global) or touches a shared cache file.
static FAILPOINTS: Mutex<()> = Mutex::new(());

fn verify_request(deadline_ms: u64) -> Request {
    Request::Verify {
        policy: PolicySpec::LoopFreedom,
        options: Some(VerifyOptions {
            max_failures: 1,
            cores: 2,
            deadline_ms,
            ..Default::default()
        }),
    }
}

/// A task-panic failpoint yields a structured `task_panicked` error; the
/// next (clean) verify on the *same* session produces a report
/// byte-identical to an unfaulted session's — the poisoned run leaked
/// nothing into the cache.
#[test]
fn task_panic_is_contained_and_the_next_verify_matches_a_clean_run() {
    let _guard = FAILPOINTS.lock().unwrap();
    let network = ring_ospf(4).network;

    plankton_faultinject::configure("task=panic*1").unwrap();
    let faulted = ServiceSession::with_network(network.clone());
    let first = faulted.handle(&verify_request(0));
    plankton_faultinject::clear();
    let Response::Error { kind, message, .. } = &first else {
        panic!("expected a structured error, got {first:?}");
    };
    assert_eq!(kind, error_kind::TASK_PANICKED);
    assert!(message.contains("panicked"), "{message}");
    assert!(
        faulted.last_report("loop-freedom").is_none(),
        "an abandoned run must not be stored for queries"
    );
    assert_eq!(faulted.stats().tasks_panicked, 1);

    let second = faulted.handle(&verify_request(0));
    assert!(matches!(second, Response::Report(_)), "{second:?}");

    let clean = ServiceSession::with_network(network);
    let clean_response = clean.handle(&verify_request(0));
    assert!(matches!(clean_response, Response::Report(_)));
    assert_eq!(
        faulted
            .last_report("loop-freedom")
            .expect("clean retry stored")
            .normalized_json(),
        clean
            .last_report("loop-freedom")
            .expect("clean run stored")
            .normalized_json(),
        "post-fault retry must be byte-identical to an unfaulted run"
    );
}

/// A deadline that cannot be met (1ms budget with a 20ms-per-task delay
/// failpoint) yields `deadline_exceeded`, serves nothing, and the session
/// recovers the moment the budget constraint is lifted.
#[test]
fn deadline_exceeded_is_structured_and_never_serves_a_report() {
    let _guard = FAILPOINTS.lock().unwrap();
    let session = ServiceSession::with_network(ring_ospf(4).network);

    plankton_faultinject::configure("task=delay:20ms").unwrap();
    let response = session.handle(&verify_request(1));
    plankton_faultinject::clear();
    let Response::Error { kind, .. } = &response else {
        panic!("expected a structured error, got {response:?}");
    };
    assert_eq!(kind, error_kind::DEADLINE_EXCEEDED);
    assert!(
        session.last_report("loop-freedom").is_none(),
        "an incomplete report must never be served"
    );
    assert_eq!(session.stats().deadline_exceeded, 1);

    let retry = session.handle(&verify_request(0));
    assert!(matches!(retry, Response::Report(_)), "{retry:?}");
}

/// `--max-inflight 0` sheds every verify with a machine-actionable
/// `overloaded` error carrying a retry hint; non-verify requests still
/// work, and the shed count is observable in `Stats`.
#[test]
fn overload_shedding_refuses_excess_verifies_with_a_retry_hint() {
    let session = ServiceSession::with_network(ring_ospf(4).network).with_max_inflight(0);
    let response = session.handle(&verify_request(0));
    let Response::Error {
        kind,
        retry_after_ms,
        ..
    } = &response
    else {
        panic!("expected a structured error, got {response:?}");
    };
    assert_eq!(kind, error_kind::OVERLOADED);
    assert!(retry_after_ms.unwrap_or(0) > 0, "retry hint present");
    let Response::Stats(stats) = session.handle(&Request::Stats) else {
        panic!("non-verify requests must still be served");
    };
    assert_eq!(stats.requests_shed, 1);
    assert_eq!(stats.verifies, 0, "a shed request never ran");
}

/// Every flavor of snapshot damage — truncation, a flipped bit, a stripped
/// checksum footer — is detected at load: the session cold-starts (zero
/// warm entries, `cache_recoveries` counted) and verification still works.
/// The undamaged file still warm-starts afterwards.
#[test]
fn corrupt_cache_snapshots_cold_start_without_crashing() {
    let _guard = FAILPOINTS.lock().unwrap();
    let dir = std::env::temp_dir().join(format!("plankton-chaos-corrupt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let network = ring_ospf(4).network;

    let writer = ServiceSession::with_network(network.clone()).with_cache_dir(&dir);
    assert!(matches!(
        writer.handle(&verify_request(0)),
        Response::Report(_)
    ));
    let Response::Persisted { entries, .. } = writer.handle(&Request::Persist) else {
        panic!("persist failed");
    };
    assert!(entries > 0);
    let cache_file = dir.join(ServiceSession::CACHE_FILE);
    let pristine = std::fs::read_to_string(&cache_file).unwrap();

    let corruptions: Vec<(&str, String)> = vec![
        ("truncated", pristine[..pristine.len() / 2].to_string()),
        ("bit-flipped", {
            let mut bytes = pristine.clone().into_bytes();
            bytes[10] ^= 0x41;
            String::from_utf8_lossy(&bytes).into_owned()
        }),
        (
            "footer-stripped",
            pristine
                .lines()
                .next()
                .map(|body| format!("{body}\n"))
                .unwrap(),
        ),
    ];
    for (label, damaged) in corruptions {
        std::fs::write(&cache_file, damaged).unwrap();
        let session = ServiceSession::new().with_cache_dir(&dir);
        let Response::Loaded {
            cache_warm_entries, ..
        } = session.load(network.clone())
        else {
            panic!("{label}: load must survive a damaged cache");
        };
        assert_eq!(cache_warm_entries, 0, "{label}: damaged cache is rejected");
        assert_eq!(session.stats().cache_recoveries, 1, "{label}");
        assert!(
            matches!(session.handle(&verify_request(0)), Response::Report(_)),
            "{label}: verification works after the cold start"
        );
    }

    // Control: the pristine bytes still warm-start — the recoveries above
    // detected damage, not the format itself.
    std::fs::write(&cache_file, &pristine).unwrap();
    let session = ServiceSession::new().with_cache_dir(&dir);
    let Response::Loaded {
        cache_warm_entries, ..
    } = session.load(network)
    else {
        panic!("pristine load failed");
    };
    assert_eq!(cache_warm_entries, entries);
    assert_eq!(session.stats().cache_recoveries, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A panic inside a mutation handler (`snapshot_swap` failpoint inside
/// `apply_delta`) is contained by the request-level catch: the client gets
/// `internal_panic`, the old snapshot keeps serving, and later mutations
/// succeed — no lock is poisoned, no state is torn.
#[test]
fn handler_panic_is_contained_and_the_old_snapshot_keeps_serving() {
    let _guard = FAILPOINTS.lock().unwrap();
    let s = ring_ospf(4);
    let session = ServiceSession::with_network(s.network.clone());
    assert!(matches!(
        session.handle(&verify_request(0)),
        Response::Report(_)
    ));

    plankton_faultinject::configure("snapshot_swap=panic*1").unwrap();
    let delta = Request::ApplyDelta {
        delta: plankton::config::ConfigDelta::LinkDown {
            link: s.ring.links[0],
        },
    };
    let response = session.handle(&delta);
    plankton_faultinject::clear();
    let Response::Error { kind, .. } = &response else {
        panic!("expected a structured error, got {response:?}");
    };
    assert_eq!(kind, error_kind::INTERNAL_PANIC);

    // The old snapshot still answers, and the same delta now applies.
    assert!(matches!(
        session.handle(&verify_request(0)),
        Response::Report(_)
    ));
    assert!(
        matches!(session.handle(&delta), Response::DeltaApplied(_)),
        "locks released across the contained panic"
    );
}

// ---------------------------------------------------------------------------
// Spawned-process chaos: faults that only mean something across a process
// boundary (SIGKILL, env-armed failpoints, client-observed timeouts).
// ---------------------------------------------------------------------------

fn spawn_daemon(args: &[&str], failpoints: Option<&str>) -> std::process::Child {
    let mut cmd = std::process::Command::new(env!("CARGO_BIN_EXE_planktond"));
    cmd.args(args)
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null());
    if let Some(spec) = failpoints {
        cmd.env(plankton_faultinject::ENV_VAR, spec);
    }
    cmd.spawn().expect("spawn planktond")
}

fn run_daemon_stdin(args: &[&str], failpoints: Option<&str>, input: &str) -> Vec<Response> {
    use std::io::Write;
    let mut child = spawn_daemon(args, failpoints);
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(input.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(|l| serde_json::from_str(l).expect("response parses"))
        .collect()
}

const VERIFY_LINE: &str =
    r#"{"Verify": {"policy": "LoopFreedom", "options": {"max_failures": 1, "cores": 2}}}"#;

/// SIGKILL while a persist is in flight (a `cache_save` delay failpoint
/// holds the write window open) never damages the snapshot: the atomic
/// tmp-file+rename protocol means the previous complete snapshot survives,
/// and the next daemon warm-starts with zero re-run tasks.
#[test]
fn sigkill_during_delayed_persist_leaves_a_warm_consistent_cache() {
    use std::io::Write;
    let dir = std::env::temp_dir().join(format!("plankton-chaos-kill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let dir_str = dir.to_str().unwrap();
    let args = ["--scenario", "ring:4", "--cache-dir", dir_str];

    // Seed a complete snapshot.
    let seeded = run_daemon_stdin(&args, None, &format!("{VERIFY_LINE}\n\"Shutdown\"\n"));
    assert!(matches!(seeded[0], Response::Report(_)), "{:?}", seeded[0]);
    assert!(dir.join(ServiceSession::CACHE_FILE).exists());

    // A second daemon is SIGKILLed while its Persist sits in the failpoint's
    // 10s delay window — mid-persist, before the rename can land.
    let mut victim = spawn_daemon(&args, Some("cache_save=delay:10000ms"));
    victim
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"\"Persist\"\n")
        .unwrap();
    std::thread::sleep(std::time::Duration::from_millis(500));
    victim.kill().expect("SIGKILL the daemon");
    let _ = victim.wait();

    // The survivor warm-starts from the seeded snapshot: nothing re-runs.
    let warm = run_daemon_stdin(&args, None, &format!("{VERIFY_LINE}\n\"Shutdown\"\n"));
    let Response::Report(report) = &warm[0] else {
        panic!("expected report, got {:?}", warm[0]);
    };
    assert_eq!(report.run.tasks_rerun, 0, "{:?}", report.run);
    assert!(report.run.tasks_cached > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// An env-armed task panic in a spawned daemon: the first verify answers a
/// structured `task_panicked` error, the second verify succeeds with the
/// same semantic result as an unfaulted daemon, and the metrics scrape
/// shows exactly one contained panic.
#[test]
fn env_armed_task_panic_daemon_answers_next_request_and_counts_the_metric() {
    let args = ["--scenario", "ring:4"];
    let input = format!("{VERIFY_LINE}\n{VERIFY_LINE}\n\"Metrics\"\n\"Shutdown\"\n");
    let faulted = run_daemon_stdin(&args, Some("task=panic*1"), &input);

    let Response::Error { kind, .. } = &faulted[0] else {
        panic!("expected a structured error, got {:?}", faulted[0]);
    };
    assert_eq!(kind, "task_panicked");
    let Response::Report(recovered) = &faulted[1] else {
        panic!("expected report, got {:?}", faulted[1]);
    };
    let Response::MetricsText { text } = &faulted[2] else {
        panic!("expected metrics, got {:?}", faulted[2]);
    };
    assert!(
        text.contains("plankton_tasks_panicked_total 1"),
        "metrics must count the contained panic:\n{text}"
    );

    let clean = run_daemon_stdin(&args, None, &format!("{VERIFY_LINE}\n\"Shutdown\"\n"));
    let Response::Report(baseline) = &clean[0] else {
        panic!("expected report, got {:?}", clean[0]);
    };
    // Semantic identity with the unfaulted run (run/timing stats
    // legitimately differ: the recovery was partially cache-served).
    assert_eq!(recovered.holds, baseline.holds);
    assert_eq!(recovered.violations, baseline.violations);
    assert_eq!(recovered.pecs_verified, baseline.pecs_verified);
    assert_eq!(
        recovered.failure_sets_explored,
        baseline.failure_sets_explored
    );
    assert_eq!(recovered.data_planes_checked, baseline.data_planes_checked);
    assert_eq!(recovered.states_explored, baseline.states_explored);
}

/// `planktonctl --timeout` bounds socket reads: against a daemon whose
/// response writes stall (a `write` delay failpoint), the client exits
/// non-zero with a timeout diagnostic instead of hanging forever.
#[cfg(unix)]
#[test]
fn planktonctl_read_timeout_fails_loudly_against_a_stalled_daemon() {
    let dir = std::env::temp_dir().join(format!("plankton-chaos-stall-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let sock = dir.join("planktond.sock");
    let mut daemon = spawn_daemon(
        &["--scenario", "ring:4", "--socket", sock.to_str().unwrap()],
        Some("write=delay:30000ms"),
    );
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_planktonctl"))
        .args([
            "--socket",
            sock.to_str().unwrap(),
            "--timeout",
            "2",
            "\"Stats\"",
        ])
        .output()
        .expect("run planktonctl");
    assert!(!out.status.success(), "a stalled read must not exit 0");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("timed out"), "{stderr}");
    daemon.kill().expect("kill daemon");
    let _ = daemon.wait();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A shed verify (`--max-inflight 0` sheds everything) is retried by
/// `planktonctl` with the daemon's retry hint until the client's timeout,
/// then surfaced as the structured `overloaded` error — scripts observe
/// overload as a response, never as a hang or a crash.
#[cfg(unix)]
#[test]
fn planktonctl_retries_overloaded_verifies_with_the_daemon_hint() {
    let dir = std::env::temp_dir().join(format!("plankton-chaos-shed-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let sock = dir.join("planktond.sock");
    let mut daemon = spawn_daemon(
        &[
            "--scenario",
            "ring:4",
            "--socket",
            sock.to_str().unwrap(),
            "--max-inflight",
            "0",
        ],
        None,
    );
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_planktonctl"))
        .args([
            "--socket",
            sock.to_str().unwrap(),
            "--timeout",
            "1",
            r#"{"Verify": {"policy": "LoopFreedom"}}"#,
        ])
        .output()
        .expect("run planktonctl");
    assert!(
        out.status.success(),
        "overload is a response, not a failure"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stdout.contains("\"overloaded\""), "{stdout}");
    assert!(stderr.contains("retrying"), "the client retried: {stderr}");
    let shutdown = std::process::Command::new(env!("CARGO_BIN_EXE_planktonctl"))
        .args(["--socket", sock.to_str().unwrap(), "\"Shutdown\""])
        .output()
        .expect("run planktonctl");
    assert!(shutdown.status.success());
    let _ = daemon.wait();
    let _ = std::fs::remove_dir_all(&dir);
}
