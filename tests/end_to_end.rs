//! End-to-end integration tests: the paper's "basic correctness" scenarios
//! (§5) run through the full public API — hand-created topologies with
//! shortest-path routing, non-deterministic protocol convergence, recursive
//! routing and BGP wedgies.

use plankton::config::scenarios::{
    bgp_wedgie, disagree_gadget, fat_tree_ospf, ring_ospf, static_route_self_loop, CoreStaticRoutes,
};
use plankton::prelude::*;

#[test]
fn ring_reachability_is_single_link_fault_tolerant() {
    let scenario = ring_ospf(8);
    let verifier = Plankton::new(scenario.network.clone());
    let sources: Vec<NodeId> = scenario.ring.routers[1..].to_vec();
    let report = verifier.verify(
        &Reachability::new(sources.clone()),
        &FailureScenario::up_to(1),
        &PlanktonOptions::default().restricted_to(vec![scenario.destination]),
    );
    assert!(report.holds(), "{report}");

    // Two failures can partition the ring.
    let report = verifier.verify(
        &Reachability::new(sources),
        &FailureScenario::up_to(2),
        &PlanktonOptions::default()
            .restricted_to(vec![scenario.destination])
            .without_lec_pruning(),
    );
    assert!(!report.holds());
    assert_eq!(report.first_violation().unwrap().failures.len(), 2);
}

#[test]
fn fat_tree_static_route_loop_detection_matches_configuration() {
    for (mode, expect_loop) in [
        (CoreStaticRoutes::None, false),
        (CoreStaticRoutes::MatchingOspf, false),
        (CoreStaticRoutes::Looping, true),
    ] {
        let scenario = fat_tree_ospf(4, mode);
        let verifier = Plankton::new(scenario.network.clone());
        let report = verifier.verify(
            &LoopFreedom::everywhere(),
            &FailureScenario::no_failures(),
            &PlanktonOptions::default(),
        );
        assert_eq!(report.holds(), !expect_loop, "mode {mode:?}: {report}");
    }
}

#[test]
fn disagree_gadget_exposes_nondeterministic_convergence() {
    let gadget = disagree_gadget();
    let verifier = Plankton::new(gadget.network.clone());

    // Reachability holds in every converged state.
    let report = verifier.verify(
        &Reachability::new(gadget.actors.clone()),
        &FailureScenario::no_failures(),
        &PlanktonOptions::default().restricted_to(vec![gadget.destination]),
    );
    assert!(report.holds(), "{report}");

    // "Traffic from b goes directly to the origin" only holds in one of the
    // two converged states, so Plankton must find a violation.
    let report = verifier.verify(
        &BoundedPathLength::new(vec![gadget.actors[1]], 1),
        &FailureScenario::no_failures(),
        &PlanktonOptions::default().restricted_to(vec![gadget.destination]),
    );
    assert!(!report.holds());
    assert!(
        report
            .first_violation()
            .unwrap()
            .trail
            .nondeterministic_steps()
            > 0
    );
}

#[test]
fn bgp_wedgie_violation_is_found() {
    let gadget = bgp_wedgie();
    let verifier = Plankton::new(gadget.network.clone());
    let backup_provider = gadget.actors[0]; // AS2

    // Intended state: AS2 reaches the customer through its transit provider
    // (3 hops: AS2 -> AS3 -> AS4 -> AS1). In the wedged state AS2 uses the
    // backup link directly (1 hop). A policy demanding that the backup link
    // carries no traffic ("AS2's path is longer than 1 hop") is therefore
    // violated only under some orderings — which the model checker finds.
    let report = verifier.verify(
        &Waypoint::new(
            vec![backup_provider],
            vec![gadget.actors[1], gadget.actors[2]],
        ),
        &FailureScenario::no_failures(),
        &PlanktonOptions::default().restricted_to(vec![gadget.destination]),
    );
    assert!(
        !report.holds(),
        "the wedged converged state (backup link in use) must be reachable"
    );

    // Reachability holds in both converged states.
    let report = verifier.verify(
        &Reachability::new(gadget.actors.clone()),
        &FailureScenario::no_failures(),
        &PlanktonOptions::default().restricted_to(vec![gadget.destination]),
    );
    assert!(report.holds(), "{report}");
}

#[test]
fn self_looping_static_route_is_handled() {
    // A static route whose next hop lies inside its own prefix produces a
    // self-loop in the PEC dependency graph (observed in the paper's
    // real-world configs); verification must still terminate and report the
    // blackhole/loop-free facts consistently.
    let gadget = static_route_self_loop();
    let verifier = Plankton::new(gadget.network.clone());
    assert_eq!(verifier.dependencies().self_loops().len(), 1);
    let report = verifier.verify(
        &LoopFreedom::everywhere(),
        &FailureScenario::no_failures(),
        &PlanktonOptions::default(),
    );
    // The route cannot resolve (its target PEC has no converged route before
    // itself), so there is no forwarding loop.
    assert!(report.holds(), "{report}");
}

#[test]
fn verification_report_serializes() {
    let scenario = ring_ospf(4);
    let verifier = Plankton::new(scenario.network.clone());
    let report = verifier.verify(
        &Reachability::new(vec![scenario.ring.routers[2]]),
        &FailureScenario::no_failures(),
        &PlanktonOptions::default().restricted_to(vec![scenario.destination]),
    );
    let json = serde_json::to_string(&report).expect("report serializes");
    assert!(json.contains("reachability"));
}
