//! Property-based integration tests over randomly generated inputs:
//! the PEC partition really is a partition, OSPF model checking agrees with
//! Dijkstra, the optimized and unoptimized searches find the same converged
//! forwarding states, and SPVP executions only ever stop in RPVP-stable
//! states.
//!
//! These originally ran under `proptest`; this build environment has no
//! registry access, so the same properties are exercised with explicit
//! seeded sampling (48 deterministic cases per property, like the original
//! `ProptestConfig::with_cases(48)`), which also makes failures trivially
//! reproducible from the reported seed.

use plankton::checker::{ModelChecker, NoPor, OspfPor, SearchOptions, Verdict};
use plankton::config::scenarios::ring_ospf;
use plankton::config::{ConfigDelta, DeviceConfig, OspfConfig};
use plankton::net::failure::FailureSet;
use plankton::net::graph::dijkstra;
use plankton::pec::{compute_pecs, PrefixTrie};
use plankton::prelude::*;
use plankton::protocols::OspfModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

const CASES: u64 = 48;

/// Sample a list of arbitrary prefixes (random address + length).
fn sample_prefixes(rng: &mut StdRng) -> Vec<Prefix> {
    let count = rng.gen_range(1..12usize);
    (0..count)
        .map(|_| {
            let addr: u32 = rng.gen_range(0..=u32::MAX);
            let len: u8 = rng.gen_range(0..=32);
            Prefix::new(Ipv4Addr(addr), len)
        })
        .collect()
}

/// Sample a random connected graph on `n` nodes given by extra edges over a
/// spanning path, with OSPF costs.
fn sample_topology(rng: &mut StdRng) -> (usize, Vec<(usize, usize, u32)>) {
    let n = rng.gen_range(3..9usize);
    let mut edges: Vec<(usize, usize, u32)> =
        (1..n).map(|i| (i - 1, i, 1 + (i as u32 % 5))).collect();
    let extras = rng.gen_range(0..n);
    for _ in 0..extras {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        let w = rng.gen_range(1..8u32);
        if a != b {
            edges.push((a.min(b), a.max(b), w));
        }
    }
    (n, edges)
}

fn build_ospf_network(
    n: usize,
    edges: &[(usize, usize, u32)],
    destination: Prefix,
) -> (Network, Vec<NodeId>) {
    let mut builder = TopologyBuilder::new();
    let nodes: Vec<NodeId> = (0..n)
        .map(|i| builder.add_router(&format!("r{i}")))
        .collect();
    let mut links = Vec::new();
    for &(a, b, _) in edges {
        links.push(builder.add_link(nodes[a], nodes[b]));
    }
    let mut network = Network::unconfigured(builder.build());
    for (i, &node) in nodes.iter().enumerate() {
        let mut ospf = OspfConfig::enabled();
        for (link, &(a, b, w)) in links.iter().zip(edges) {
            if a == i || b == i {
                ospf = ospf.with_cost(*link, w);
            }
        }
        if i == 0 {
            ospf = ospf.with_network(destination);
        }
        *network.device_mut(node) = DeviceConfig::empty().with_ospf(ospf);
    }
    (network, nodes)
}

/// The trie partition is a disjoint cover of the whole address space and is
/// coarsest (adjacent ranges differ in their covering sets).
#[test]
fn trie_partition_is_a_partition() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let prefixes = sample_prefixes(&mut rng);
        let mut trie = PrefixTrie::new();
        for (i, p) in prefixes.iter().enumerate() {
            trie.insert(*p, i);
        }
        let parts = trie.partition();
        assert_eq!(parts.first().unwrap().0.lo, Ipv4Addr::ZERO, "seed {seed}");
        assert_eq!(parts.last().unwrap().0.hi, Ipv4Addr::MAX, "seed {seed}");
        for w in parts.windows(2) {
            assert_eq!(w[0].0.hi.saturating_next(), w[1].0.lo, "seed {seed}");
            assert_ne!(&w[0].1, &w[1].1, "seed {seed}");
        }
        // Every range's covering set is exactly the inserted prefixes that
        // contain its representative address.
        for (range, covering) in &parts {
            let expected: HashSet<Prefix> = prefixes
                .iter()
                .copied()
                .filter(|p| p.contains(range.lo))
                .collect();
            let actual: HashSet<Prefix> = covering.iter().copied().collect();
            assert_eq!(expected, actual, "seed {seed}");
        }
    }
}

/// Model-checked OSPF converges to Dijkstra's shortest-path costs on random
/// weighted graphs.
#[test]
fn ospf_model_checking_matches_dijkstra() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        let (n, edges) = sample_topology(&mut rng);
        let destination: Prefix = "198.51.100.0/24".parse().unwrap();
        let (network, nodes) = build_ospf_network(n, &edges, destination);
        let origin = nodes[0];

        let model = OspfModel::new(&network, destination, vec![origin], &FailureSet::none());
        let checker = ModelChecker::new(
            &model,
            Box::new(OspfPor),
            SearchOptions::all_optimizations(),
            FailureSet::none(),
        );
        let mut costs = vec![None; n];
        checker.run(&mut |converged, _| {
            for (i, cost) in costs.iter_mut().enumerate() {
                *cost = converged.best(NodeId(i as u32)).map(|r| r.igp_cost);
            }
            Verdict::Stop
        });

        let device_cost = |node: NodeId, link: LinkId| {
            network
                .device(node)
                .ospf
                .as_ref()
                .and_then(|o| o.cost(link))
                .map(u64::from)
        };
        let sp = dijkstra(
            &network.topology,
            origin,
            &FailureSet::none(),
            |node, link| {
                // Dijkstra explores from the origin outwards, so the relevant
                // cost is the one configured at the *receiving* end of the link.
                let other = network.topology.link(link).other(node);
                device_cost(other, link)
            },
        );
        for (i, &node) in nodes.iter().enumerate() {
            assert_eq!(costs[i], sp.cost(node), "seed {seed}, node {i}");
        }
    }
}

/// The full optimization suite and the naive search find exactly the same
/// set of converged forwarding states.
#[test]
fn optimizations_preserve_converged_states() {
    for n in 3usize..7 {
        let scenario = ring_ospf(n);
        let model = OspfModel::new(
            &scenario.network,
            scenario.destination,
            vec![scenario.origin],
            &FailureSet::none(),
        );
        let collect = |options: SearchOptions, naive: bool| {
            let checker: ModelChecker = if naive {
                ModelChecker::new(&model, Box::new(NoPor), options, FailureSet::none())
            } else {
                ModelChecker::new(&model, Box::new(OspfPor), options, FailureSet::none())
            };
            let mut states: HashSet<Vec<Option<NodeId>>> = HashSet::new();
            checker.run(&mut |converged, _| {
                states.insert(
                    (0..n as u32)
                        .map(|i| converged.next_hop(NodeId(i)))
                        .collect(),
                );
                Verdict::Continue
            });
            states
        };
        let optimized = collect(SearchOptions::all_optimizations(), false);
        let naive = collect(SearchOptions::no_optimizations(), true);
        assert_eq!(optimized, naive, "ring size {n}");
    }
}

/// Every SPVP execution that converges stops in a state with an empty RPVP
/// enabled set (the soundness direction of Theorem 1).
#[test]
fn spvp_convergence_is_rpvp_stable() {
    use plankton::protocols::rpvp::{Rpvp, RpvpState};
    use plankton::protocols::spvp::Spvp;
    for n in 3usize..7 {
        let scenario = ring_ospf(n);
        let model = OspfModel::new(
            &scenario.network,
            scenario.destination,
            vec![scenario.origin],
            &FailureSet::none(),
        );
        for seed in 0..64u64 {
            if let Some(converged) = Spvp::new(&model).run(seed, 100_000) {
                let rpvp = Rpvp::new(&model);
                let mut interner = plankton::protocols::RouteInterner::new();
                let state = RpvpState::from_routes(&converged.best, &mut interner);
                assert!(rpvp.converged(&state, &interner), "ring {n}, seed {seed}");
            }
        }
    }
}

/// Build one network holding *two* disjoint OSPF speaker components (two
/// random connected graphs with no links between them). Returns the network,
/// the two origin devices, and the per-side (nodes, links) lists.
#[allow(clippy::type_complexity)]
fn build_two_component_network(
    rng: &mut StdRng,
    dest_a: Prefix,
    dest_b: Prefix,
) -> (Network, NodeId, NodeId, Vec<(NodeId, LinkId)>) {
    let (na, edges_a) = sample_topology(rng);
    let (nb, edges_b) = sample_topology(rng);
    let mut builder = TopologyBuilder::new();
    let nodes: Vec<NodeId> = (0..na + nb)
        .map(|i| builder.add_router(&format!("r{i}")))
        .collect();
    let mut incidence: Vec<Vec<(LinkId, u32)>> = vec![Vec::new(); na + nb];
    let mut b_links: Vec<(NodeId, LinkId)> = Vec::new();
    for (offset, edges) in [(0, &edges_a), (na, &edges_b)] {
        for &(a, b, w) in edges.iter() {
            let link = builder.add_link(nodes[offset + a], nodes[offset + b]);
            incidence[offset + a].push((link, w));
            incidence[offset + b].push((link, w));
            if offset > 0 {
                b_links.push((nodes[offset + a], link));
                b_links.push((nodes[offset + b], link));
            }
        }
    }
    let mut network = Network::unconfigured(builder.build());
    for (i, &node) in nodes.iter().enumerate() {
        let mut ospf = OspfConfig::enabled();
        for &(link, w) in &incidence[i] {
            ospf = ospf.with_cost(link, w);
        }
        if i == 0 {
            ospf = ospf.with_network(dest_a);
        }
        if i == na {
            ospf = ospf.with_network(dest_b);
        }
        *network.device_mut(node) = DeviceConfig::empty().with_ospf(ospf);
    }
    (network, nodes[0], nodes[na], b_links)
}

/// Scoped OSPF slices are down-link-agnostic: administratively downing any
/// sequence of links (in any order) leaves every origin's scoped slice
/// untouched — down-ness reaches task keys through the effective failure
/// set, which is what lets a fault-tolerance run pre-pay for link deltas.
#[test]
fn scoped_slices_invariant_under_down_link_permutations() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(3000 + seed);
        let (n, edges) = sample_topology(&mut rng);
        let destination: Prefix = "198.51.100.0/24".parse().unwrap();
        let (network, nodes) = build_ospf_network(n, &edges, destination);
        let origins = vec![nodes[0]];
        let fixed_failures = FailureSet::none();
        let baseline = network
            .ospf_scoped_slices()
            .fingerprint(&origins, &fixed_failures)
            .expect("origins are speakers");

        // Down a random subset of links in a random order, re-checking the
        // slice after every step; then bring them back up in another order.
        let mut net = network.clone();
        let mut downed: Vec<LinkId> = Vec::new();
        let link_count = net.topology.link_count();
        for _ in 0..rng.gen_range(1..=link_count) {
            let l = LinkId(rng.gen_range(0..link_count as u32));
            if !net.is_link_down(l) {
                net.set_link_down(l);
                downed.push(l);
            }
            assert_eq!(
                net.ospf_scoped_slices()
                    .fingerprint(&origins, &fixed_failures),
                Some(baseline),
                "seed {seed}: slice moved after downing {downed:?}"
            );
        }
        while !downed.is_empty() {
            let l = downed.swap_remove(rng.gen_range(0..downed.len()));
            net.set_link_up(l);
            assert_eq!(
                net.ospf_scoped_slices()
                    .fingerprint(&origins, &fixed_failures),
                Some(baseline),
                "seed {seed}: slice moved after re-raising {l:?}"
            );
        }
    }
}

/// Config edits outside a PEC's scoped region — OSPF edits in a different
/// speaker component, or non-OSPF edits anywhere — leave its scoped slice
/// untouched, while the *global* OSPF slice moves on every OSPF edit
/// (which is exactly the imprecision this PR removes).
#[test]
fn scoped_slices_invariant_under_out_of_region_edits() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(4000 + seed);
        let dest_a: Prefix = "198.51.100.0/24".parse().unwrap();
        let dest_b: Prefix = "203.0.113.0/24".parse().unwrap();
        let (network, origin_a, origin_b, b_links) =
            build_two_component_network(&mut rng, dest_a, dest_b);
        let none = FailureSet::none();
        let slices = network.ospf_scoped_slices();
        assert_ne!(
            slices.components().component_of(origin_a),
            slices.components().component_of(origin_b),
            "seed {seed}: construction must yield two components"
        );
        let a_baseline = slices.fingerprint(&[origin_a], &none).unwrap();
        let global_baseline = network.ospf_slice_fingerprint();

        // An OSPF cost edit in component B.
        let mut net = network.clone();
        let (device, link) = b_links[rng.gen_range(0..b_links.len())];
        // Sampled weights are < 8, so this is never a value-level no-op.
        ConfigDelta::OspfCostChange {
            device,
            link,
            cost: rng.gen_range(50..99),
        }
        .apply(&mut net)
        .expect("edit applies");
        assert_eq!(
            net.ospf_scoped_slices().fingerprint(&[origin_a], &none),
            Some(a_baseline),
            "seed {seed}: B-side cost edit moved A's scoped slice"
        );
        assert_ne!(
            net.ospf_slice_fingerprint(),
            global_baseline,
            "seed {seed}: the global slice must see the edit"
        );
        // The delta reports its region: component B only.
        let region = ConfigDelta::OspfCostChange {
            device,
            link,
            cost: 49,
        }
        .apply(&mut net)
        .unwrap()
        .ospf_region
        .expect("cost change reports a region");
        assert!(region.contains(&device), "seed {seed}");
        assert!(!region.contains(&origin_a), "seed {seed}");

        // A non-OSPF edit (static route) anywhere leaves both slices alone.
        let mut net = network.clone();
        net.device_mut(origin_a)
            .static_routes
            .push(plankton::config::StaticRoute::null(dest_b));
        assert_eq!(
            net.ospf_scoped_slices().fingerprint(&[origin_a], &none),
            Some(a_baseline),
            "seed {seed}: static route moved the scoped OSPF slice"
        );
        assert_eq!(net.ospf_slice_fingerprint(), global_baseline, "seed {seed}");
    }
}

/// PEC computation on random OSPF networks keeps every destination prefix in
/// exactly one PEC, and the verifier finds it reachable from every router
/// (the graphs are connected by construction).
#[test]
fn random_ospf_network_is_verified_reachable() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(2000 + seed);
        let (n, edges) = sample_topology(&mut rng);
        let destination: Prefix = "198.51.100.0/24".parse().unwrap();
        let (network, nodes) = build_ospf_network(n, &edges, destination);
        let pecs = compute_pecs(&network);
        assert_eq!(pecs.pecs_overlapping(&destination).len(), 1, "seed {seed}");

        let verifier = Plankton::new(network.clone());
        let report = verifier.verify(
            &Reachability::new(nodes[1..].to_vec()),
            &FailureScenario::no_failures(),
            &PlanktonOptions::default().restricted_to(vec![destination]),
        );
        assert!(report.holds(), "seed {seed}: {report}");
    }
}
