//! Streaming update-storm tests for the delta queue and bounded-lag drain.
//!
//! The contract under test: a storm of deltas ingested through
//! `ApplyDeltas {ack: "enqueued"}` — queued, coalesced, and verified in
//! batches by the background drain — must leave the session in a state
//! whose final merged report is *byte-identical* to a session that replayed
//! the same deltas one at a time through `ApplyDelta`. Coalescing and
//! batching are pure performance transforms; they must never change what
//! the verifier concludes.

use plankton::config::scenarios::{ring_ospf, RingOspfScenario};
use plankton::config::static_routes::StaticRoute;
use plankton::config::ConfigDelta;
use plankton::core::Tuning;
use plankton::service::{PolicySpec, Request, Response, ServiceSession, VerifyOptions};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Deterministic xorshift64* PRNG: storms must be reproducible from a seed.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

/// A seeded storm over a ring: link flaps, OSPF cost churn, and static
/// route add/remove, all concentrated on a handful of targets so that
/// coalescing has real work to do.
fn storm_deltas(s: &RingOspfScenario, seed: u64, count: usize) -> Vec<ConfigDelta> {
    let mut rng = XorShift(seed | 1);
    let mut deltas = Vec::with_capacity(count);
    for _ in 0..count {
        let r = rng.next();
        let slot = (r >> 8) as usize % 3;
        deltas.push(match r % 5 {
            0 => ConfigDelta::LinkDown {
                link: s.ring.links[slot],
            },
            1 => ConfigDelta::LinkUp {
                link: s.ring.links[slot],
            },
            2 => ConfigDelta::OspfCostChange {
                device: s.ring.routers[slot],
                link: s.ring.links[slot],
                cost: 1 + ((r >> 16) % 100) as u32,
            },
            3 => ConfigDelta::StaticRouteAdd {
                device: s.ring.routers[slot],
                route: StaticRoute::null(s.destination).with_distance(1 + ((r >> 16) % 200) as u8),
            },
            _ => ConfigDelta::StaticRouteRemove {
                device: s.ring.routers[slot],
                prefix: s.destination,
            },
        });
    }
    deltas
}

fn verify_request(s: &RingOspfScenario) -> Request {
    Request::Verify {
        policy: PolicySpec::LoopFreedom,
        options: Some(VerifyOptions {
            restrict_prefixes: vec![s.destination],
            ..VerifyOptions::default()
        }),
    }
}

/// Run the final verify and return the full merged report's normalized
/// JSON — the byte-identity oracle.
fn final_report_bytes(session: &ServiceSession, verify: &Request) -> String {
    let Response::Report(summary) = session.handle(verify) else {
        panic!("final verify did not produce a report");
    };
    session
        .last_report(&summary.policy)
        .expect("verified policy must have a stored report")
        .normalized_json()
}

/// The tentpole equivalence test: a coalesced, bounded-lag streaming run
/// must end byte-identical to sequential one-at-a-time replay.
#[test]
fn seeded_storm_streaming_report_is_byte_identical_to_sequential_replay() {
    let s = ring_ospf(6);
    let deltas = storm_deltas(&s, 0x5EED_CAFE, 120);
    let verify = verify_request(&s);

    // Sequential oracle: every delta applied (and verified-for-effect) one
    // at a time. Deltas that are no-ops against the current state (e.g.
    // downing an already-down link) answer with an Error and leave the
    // network unchanged — exactly what the batch path must reproduce.
    let sequential = ServiceSession::with_network(s.network.clone());
    for delta in &deltas {
        match sequential.handle(&Request::ApplyDelta {
            delta: delta.clone(),
        }) {
            Response::DeltaApplied(_) | Response::Error { .. } => {}
            other => panic!("unexpected sequential response {other:?}"),
        }
    }
    let sequential_bytes = final_report_bytes(&sequential, &verify);

    // Streaming run: tight lag bounds so the storm drains in many small
    // coalesced batches while we are still enqueuing.
    let streaming = Arc::new(ServiceSession::new().with_tuning(Tuning {
        max_lag_deltas: Some(8),
        max_lag_ms: Some(5),
        ..Tuning::default()
    }));
    let Response::Loaded { .. } = streaming.load(s.network.clone()) else {
        panic!("load failed");
    };
    let handle = streaming.start_streaming();
    for burst in deltas.chunks(7) {
        let response = streaming.handle(&Request::ApplyDeltas {
            deltas: burst.to_vec(),
            ack: "enqueued".into(),
        });
        let Response::DeltasAccepted {
            ack, deltas: acks, ..
        } = &response
        else {
            panic!("burst not accepted: {response:?}");
        };
        assert_eq!(ack, "enqueued");
        assert_eq!(acks.len(), burst.len(), "one ack per submitted delta");
        for a in acks {
            assert!(
                a.status == "enqueued" || a.status == "coalesced",
                "unexpected enqueue-mode ack status {:?}",
                a.status
            );
        }
        // Pace the storm past the 5 ms age bound so the drain verifiably
        // runs *during* ingestion, not once at the end.
        std::thread::sleep(Duration::from_millis(3));
    }
    // Stop the drain: this flushes everything still pending, so the final
    // verify below sees the complete storm.
    handle.stop();

    let stats = streaming.stats();
    assert_eq!(stats.queue_depth, 0, "stop() must drain the queue");
    assert_eq!(stats.deltas_enqueued, 120);
    assert!(
        stats.deltas_coalesced > 0,
        "a 120-delta storm over 3 targets must coalesce: {stats:?}"
    );
    assert!(
        stats.delta_batches > 1,
        "tight lag bounds must produce multiple drain batches: {stats:?}"
    );
    assert!(
        stats.deltas_applied < 120,
        "coalescing must save apply work: {} applied",
        stats.deltas_applied
    );

    let streaming_bytes = final_report_bytes(&streaming, &verify);
    assert_eq!(
        streaming_bytes, sequential_bytes,
        "coalesced streaming ingestion changed the verification outcome"
    );
}

/// A lone delta must not wait for `max_lag_deltas` peers: the age bound
/// (`max_lag_ms`) alone must get it verified.
#[test]
fn lone_enqueued_delta_is_verified_within_the_lag_bound() {
    let s = ring_ospf(4);
    let session = Arc::new(ServiceSession::new().with_tuning(Tuning {
        max_lag_deltas: Some(1_000_000), // count bound effectively off
        max_lag_ms: Some(25),
        ..Tuning::default()
    }));
    session.load(s.network.clone());
    let handle = session.start_streaming();

    let response = session.handle(&Request::ApplyDeltas {
        deltas: vec![ConfigDelta::LinkDown {
            link: s.ring.links[0],
        }],
        ack: "enqueued".into(),
    });
    let Response::DeltasAccepted { deltas: acks, .. } = &response else {
        panic!("not accepted: {response:?}");
    };
    assert_eq!(acks[0].status, "enqueued");

    // The drain must pick it up on the age bound alone. Generous wall-clock
    // ceiling for a loaded CI machine; the precise lower bound below is the
    // real assertion.
    let start = Instant::now();
    loop {
        let stats = session.stats();
        if stats.delta_batches >= 1 {
            assert_eq!(stats.queue_depth, 0);
            assert_eq!(stats.deltas_applied, 1);
            // It aged past the bound before draining, so the recorded
            // enqueue→verified lag reflects the configured 25 ms.
            assert!(
                stats.verify_lag_p99_ms >= 20.0,
                "lone delta drained suspiciously early: p99 lag {} ms",
                stats.verify_lag_p99_ms
            );
            break;
        }
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "lone enqueued delta never drained: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    handle.stop();
}

/// Queue high-water backpressure: pushes past `max_pending_deltas` are
/// shed with the structured `overloaded` contract (PR 7 shape: kind +
/// retry_after_ms), and a flushing request makes room again.
#[test]
fn storm_past_the_high_water_mark_sheds_with_retry_hint() {
    let s = ring_ospf(6);
    // No background drain: the queue can only fill.
    let session = ServiceSession::new().with_tuning(Tuning {
        max_pending_deltas: Some(4),
        ..Tuning::default()
    });
    session.load(s.network.clone());

    // Four non-coalescible deltas (distinct links) fill the queue exactly.
    let fill: Vec<ConfigDelta> = (0..4)
        .map(|i| ConfigDelta::LinkDown {
            link: s.ring.links[i],
        })
        .collect();
    let response = session.handle(&Request::ApplyDeltas {
        deltas: fill,
        ack: "enqueued".into(),
    });
    let Response::DeltasAccepted { lag, .. } = &response else {
        panic!("fill burst not accepted: {response:?}");
    };
    assert_eq!(lag.pending, 4);

    // The fifth distinct delta hits the high-water mark.
    let overflow = Request::ApplyDeltas {
        deltas: vec![ConfigDelta::LinkDown {
            link: s.ring.links[4],
        }],
        ack: "enqueued".into(),
    };
    let Response::Error {
        kind,
        retry_after_ms,
        message,
        ..
    } = session.handle(&overflow)
    else {
        panic!("overflow push was not shed");
    };
    assert_eq!(kind, "overloaded", "{message}");
    let retry = retry_after_ms.expect("overloaded must carry a retry hint");
    assert!(retry >= 1, "nonsense retry hint {retry}");
    assert_eq!(session.stats().deltas_shed, 1);

    // A verified-mode request flushes the queue inline (read-your-writes),
    // making room for the retried delta.
    let Response::Report(_) = session.handle(&verify_request(&s)) else {
        panic!("flushing verify failed");
    };
    assert_eq!(session.stats().queue_depth, 0);
    let Response::DeltasAccepted { lag, .. } = session.handle(&overflow) else {
        panic!("retry after flush still shed");
    };
    assert_eq!(lag.pending, 1);
}

/// `ack: "verified"` batches apply inline with one rebuild: per-delta acks
/// must report applied / coalesced / rejected fates in request order, and
/// the response must be read-your-writes (nothing left pending).
#[test]
fn verified_ack_batch_reports_per_delta_fates_in_order() {
    let s = ring_ospf(6);
    let session = ServiceSession::with_network(s.network.clone());

    let response = session.handle(&Request::ApplyDeltas {
        deltas: vec![
            // Coalesced away by the LinkUp below (same link, last writer wins)...
            ConfigDelta::LinkDown {
                link: s.ring.links[0],
            },
            // ...applies: a genuinely new link-down.
            ConfigDelta::LinkDown {
                link: s.ring.links[1],
            },
            // ...rejected: the link is already up, so the survivor is a no-op.
            ConfigDelta::LinkUp {
                link: s.ring.links[0],
            },
        ],
        ack: "verified".into(),
    });
    let Response::DeltasAccepted {
        ack,
        deltas: acks,
        coalesced,
        lag,
    } = &response
    else {
        panic!("batch not accepted: {response:?}");
    };
    assert_eq!(ack, "verified");
    assert_eq!(*coalesced, 1);
    assert_eq!(lag.pending, 0, "verified ack is read-your-writes");
    let statuses: Vec<&str> = acks.iter().map(|a| a.status.as_str()).collect();
    assert_eq!(statuses, ["coalesced", "applied", "rejected"]);
    assert!(
        acks[2].detail.contains("already"),
        "rejected ack must carry the apply error, got {:?}",
        acks[2].detail
    );
    // Exactly one delta changed the network.
    assert_eq!(session.stats().deltas_applied, 1);
}

/// The readiness-driven server decouples connection count from worker
/// count: many more concurrent connections than workers must all be
/// served, including the v2 Hello handshake on each.
#[cfg(unix)]
#[test]
fn connections_can_dwarf_the_worker_pool() {
    use plankton::service::{connect_with_retry, ServeOptions};
    use std::io::{BufRead, BufReader, Write};

    let s = ring_ospf(4);
    let session = ServiceSession::with_network(s.network.clone());
    let dir = std::env::temp_dir().join(format!("plankton-storm-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("planktond.sock");
    let timeout = Duration::from_secs(30);

    std::thread::scope(|scope| {
        let server = scope.spawn(|| {
            plankton::service::serve_unix(&session, &path, &ServeOptions { workers: 2 }).unwrap()
        });

        // Open all 6 connections up front (3× the worker pool), then talk
        // on every one of them.
        let mut conns: Vec<_> = (0..6)
            .map(|_| {
                let stream = connect_with_retry(&path, timeout).unwrap();
                let reader = BufReader::new(stream.try_clone().unwrap());
                (stream, reader)
            })
            .collect();
        for (writer, reader) in conns.iter_mut() {
            writer.write_all(b"\"Hello\"\n").unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let Response::Welcome { proto_version, .. } =
                serde_json::from_str::<Response>(&line).unwrap()
            else {
                panic!("no Welcome: {line}");
            };
            assert!(proto_version.starts_with("2."));

            writer.write_all(b"\"Stats\"\n").unwrap();
            line.clear();
            reader.read_line(&mut line).unwrap();
            let Response::Stats(stats) = serde_json::from_str::<Response>(&line).unwrap() else {
                panic!("no Stats: {line}");
            };
            assert!(stats.connections_open >= 1);
        }
        // The last connection sees all six still open.
        let (writer, reader) = conns.last_mut().unwrap();
        writer.write_all(b"\"Stats\"\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let Response::Stats(stats) = serde_json::from_str::<Response>(&line).unwrap() else {
            panic!("no Stats: {line}");
        };
        assert_eq!(stats.connections_open, 6);

        writer.write_all(b"\"Shutdown\"\n").unwrap();
        line.clear();
        reader.read_line(&mut line).unwrap();
        server.join().unwrap();
    });
    let _ = std::fs::remove_dir_all(&dir);
}
