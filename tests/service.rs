//! Delta-correctness tests for the incremental verification service.
//!
//! For every delta kind, the incremental re-verification after the delta
//! must produce a `VerificationReport` identical — including exact
//! `SearchStats` — to a from-scratch `Plankton::verify` on the post-delta
//! network, while observably re-exploring fewer PECs than a full run where
//! the delta is small. Engine pool statistics are nulled before comparison
//! (how many tasks the *pool* executed legitimately differs; what they
//! computed must not).

use plankton::config::scenarios::{fat_tree_ospf, isp_ibgp_over_ospf, ring_ospf, CoreStaticRoutes};
use plankton::config::static_routes::StaticRoute;
use plankton::config::{ConfigDelta, DeviceConfig, OspfConfig, RouteMap};
use plankton::core::{IncrementalVerifier, Plankton};
use plankton::net::generators::as_topo::AsTopologySpec;
use plankton::policy::Policy;
use plankton::prelude::*;

/// Verify once to warm the cache, apply the delta, re-verify incrementally,
/// and assert the merged report equals a from-scratch verification of the
/// post-delta network. Returns (pecs_reexplored, pecs_checked, tasks_cached).
fn assert_delta_incremental(
    label: &str,
    network: &Network,
    delta: ConfigDelta,
    policy: &dyn Policy,
    scenario: &FailureScenario,
    options: PlanktonOptions,
) -> (usize, usize, usize) {
    let session = IncrementalVerifier::new(network.clone());
    let (warm, warm_stats) = session.verify(policy, 99, scenario, &options);
    assert_eq!(warm_stats.tasks_cached, 0, "{label}: cold cache");

    let applied = session
        .apply_delta(&delta)
        .unwrap_or_else(|e| panic!("{label}: delta failed: {e}"));

    let (incremental, run) = session.verify(policy, 99, scenario, &options);
    let scratch =
        Plankton::new(session.snapshot().network().clone()).verify(policy, scenario, &options);
    assert_eq!(
        incremental.normalized_json(),
        scratch.normalized_json(),
        "{label}: incremental report must equal from-scratch verification \
         (delta {}, touched {} PECs)",
        applied.kind,
        applied.pecs_touched.len(),
    );
    // Sanity: the warm report was computed on the pre-delta network; nothing
    // requires it to match, but it must at least be well-formed.
    assert!(warm.pecs_verified > 0, "{label}");
    (run.pecs_reexplored, run.pecs_checked, run.tasks_cached)
}

fn default_options() -> PlanktonOptions {
    PlanktonOptions::default().collect_all_violations()
}

#[test]
fn ring_all_delta_kinds_match_from_scratch() {
    let s = ring_ospf(6);
    let sources: Vec<NodeId> = s.ring.routers[1..].to_vec();
    let policy = Reachability::new(sources);
    let scenario = FailureScenario::up_to(1);
    let options = default_options().restricted_to(vec![s.destination]);
    let deltas: Vec<(&str, ConfigDelta)> = vec![
        (
            "link down",
            ConfigDelta::LinkDown {
                link: s.ring.links[2],
            },
        ),
        (
            "ospf cost",
            ConfigDelta::OspfCostChange {
                device: s.ring.routers[1],
                link: s.ring.links[1],
                cost: 50,
            },
        ),
        (
            "static add",
            ConfigDelta::StaticRouteAdd {
                device: s.ring.routers[3],
                route: StaticRoute::to_interface(s.destination, s.ring.routers[2]),
            },
        ),
        (
            "node add",
            ConfigDelta::NodeAdd {
                name: "chord".into(),
                loopback: Some(Ipv4Addr::new(10, 255, 0, 1)),
                links: vec![s.ring.routers[0], s.ring.routers[3]],
                config: DeviceConfig::empty().with_ospf(OspfConfig::enabled()),
            },
        ),
        (
            "node remove",
            ConfigDelta::NodeRemove {
                device: s.ring.routers[4],
            },
        ),
    ];
    for (label, delta) in deltas {
        assert_delta_incremental(
            label,
            &s.network,
            delta,
            &policy,
            &scenario,
            options.clone(),
        );
    }
}

#[test]
fn ring_link_up_matches_from_scratch() {
    // Start from a ring with a link already down and bring it back.
    let s = ring_ospf(6);
    let mut network = s.network.clone();
    network.set_link_down(s.ring.links[0]);
    let sources: Vec<NodeId> = s.ring.routers[1..].to_vec();
    assert_delta_incremental(
        "link up",
        &network,
        ConfigDelta::LinkUp {
            link: s.ring.links[0],
        },
        &Reachability::new(sources),
        &FailureScenario::up_to(1),
        default_options().restricted_to(vec![s.destination]),
    );
}

#[test]
fn fat_tree_small_deltas_reexplore_strictly_fewer_pecs() {
    let s = fat_tree_ospf(4, CoreStaticRoutes::MatchingOspf);
    let policy = LoopFreedom::everywhere();
    let scenario = FailureScenario::no_failures();

    // A static-route delta touches one destination prefix: exactly the PECs
    // overlapping it re-run.
    let (reexplored, checked, cached) = assert_delta_incremental(
        "fat tree static add",
        &s.network,
        ConfigDelta::StaticRouteAdd {
            device: s.fat_tree.aggregation[0][0],
            route: StaticRoute::to_interface(s.destinations[0], s.fat_tree.edge[0][0]),
        },
        &policy,
        &scenario,
        default_options(),
    );
    assert!(
        reexplored < checked,
        "static delta must re-explore strictly fewer PECs ({reexplored}/{checked})"
    );
    assert!(cached > 0, "clean results must come from the cache");
    assert!(
        reexplored <= 2,
        "a one-prefix delta dirties at most the overlapping PECs, got {reexplored}"
    );
}

#[test]
fn fat_tree_single_link_delta_reexplores_strictly_fewer_pecs() {
    let s = fat_tree_ospf(4, CoreStaticRoutes::MatchingOspf);
    let policy = LoopFreedom::everywhere();
    // Explore single-link failures up front: the link-down delta's effective
    // failure sets are then already cached, and connected-only loopback PECs
    // share their failure-free outcomes too.
    let scenario = FailureScenario::up_to(1);
    let link = s.network.topology.links()[0].id;
    let (reexplored, checked, cached) = assert_delta_incremental(
        "fat tree link down",
        &s.network,
        ConfigDelta::LinkDown { link },
        &policy,
        &scenario,
        default_options(),
    );
    assert!(cached > 0, "pre-explored failure scenarios must be reused");
    assert!(
        reexplored < checked,
        "single-link delta must re-explore strictly fewer PECs ({reexplored}/{checked})"
    );
}

#[test]
fn fat_tree_static_remove_and_policy_violation_flow() {
    // Install a looping static route via a delta (the report must flip to
    // violated, identically to from-scratch), then remove it again (the
    // report must flip back and the original cache entries must hit).
    let s = fat_tree_ospf(4, CoreStaticRoutes::None);
    let policy = LoopFreedom::everywhere();
    let scenario = FailureScenario::no_failures();
    let options = default_options();
    let session = IncrementalVerifier::new(s.network.clone());
    let (clean, _) = session.verify(&policy, 5, &scenario, &options);
    assert!(clean.holds());

    // edge[0][0] → agg[0][0] → back: a loop for a remote pod's prefix.
    let device = s.fat_tree.aggregation[0][0];
    let victim_prefix = s.destinations[2 * 2]; // pod 2's first edge prefix
    let add = ConfigDelta::StaticRouteAdd {
        device,
        route: StaticRoute::to_interface(victim_prefix, s.fat_tree.edge[0][0]),
    };
    session.apply_delta(&add).unwrap();
    // Also give the edge switch a route pointing back up: a 2-node loop.
    let back = ConfigDelta::StaticRouteAdd {
        device: s.fat_tree.edge[0][0],
        route: StaticRoute::to_interface(victim_prefix, device),
    };
    session.apply_delta(&back).unwrap();

    let (broken, run) = session.verify(&policy, 5, &scenario, &options);
    assert!(!broken.holds(), "the injected loop must be found");
    let scratch =
        Plankton::new(session.snapshot().network().clone()).verify(&policy, &scenario, &options);
    assert_eq!(broken.normalized_json(), scratch.normalized_json());
    assert!(run.tasks_cached > 0, "unrelated PECs stay cached");

    // Roll both routes back: the original (clean) cache entries hit again.
    session
        .apply_delta(&ConfigDelta::StaticRouteRemove {
            device,
            prefix: victim_prefix,
        })
        .unwrap();
    session
        .apply_delta(&ConfigDelta::StaticRouteRemove {
            device: s.fat_tree.edge[0][0],
            prefix: victim_prefix,
        })
        .unwrap();
    let (restored, run) = session.verify(&policy, 5, &scenario, &options);
    assert!(restored.holds());
    assert_eq!(run.tasks_rerun, 0, "rollback restores every key: {run:?}");
    assert_eq!(restored.normalized_json(), clean.normalized_json());
}

/// Seeded random-delta soak: drive one incremental session through a random
/// delta sequence and cross-check the scoped OSPF keys against the
/// global-slice oracle at every step.
///
/// Two directions are asserted:
/// * **Precision is monotone** — any (PEC × failure-set) key the global
///   oracle leaves clean is also clean under scoping (scoping only ever
///   removes inputs a task cannot read).
/// * **Extra cleanliness is sound** — where a scoped key stays clean while
///   the oracle would re-run (the savings this PR exists for), the merged
///   incremental report must still be byte-identical to a from-scratch
///   verification of the post-delta network, exact `SearchStats` included.
///   A scoped key that wrongly survived a delta would surface here as a
///   divergent merge.
///
/// The soak also asserts it actually exercised the interesting case (scoped
/// clean ∧ oracle dirty) — otherwise it would vacuously pass.
#[test]
fn seeded_random_delta_soak_cross_checks_scoped_keys_against_the_global_oracle() {
    use plankton::net::failure::FailureSet;
    use plankton::pec::{compute_pecs, OspfSliceMode, PecDependencies, PecId, TaskKeys};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let s = fat_tree_ospf(4, CoreStaticRoutes::MatchingOspf);
    let policy = LoopFreedom::everywhere();
    let scenario = FailureScenario::no_failures();
    let options = PlanktonOptions::default().collect_all_violations();

    let keys_of = |network: &Network, mode: OspfSliceMode| {
        let pecs = compute_pecs(network);
        let deps = PecDependencies::compute(network, &pecs);
        let failures = vec![network.down_links.iter().copied().collect::<FailureSet>()];
        let keys = TaskKeys::compute(network, &pecs, &deps, &failures, 7, 9, mode, |_| 0);
        (pecs.len(), keys)
    };
    let random_delta = |rng: &mut StdRng, network: &Network| -> ConfigDelta {
        let device = NodeId(rng.gen_range(0..network.node_count() as u32));
        let link_count = network.topology.link_count() as u32;
        match rng.gen_range(0..5u8) {
            0 => {
                let neighbors = network.topology.neighbors(device);
                let (_, link) = neighbors[rng.gen_range(0..neighbors.len())];
                ConfigDelta::OspfCostChange {
                    device,
                    link,
                    cost: rng.gen_range(20..60),
                }
            }
            1 => ConfigDelta::LinkDown {
                link: LinkId(rng.gen_range(0..link_count)),
            },
            2 => ConfigDelta::LinkUp {
                link: LinkId(rng.gen_range(0..link_count)),
            },
            3 => ConfigDelta::StaticRouteAdd {
                device,
                route: StaticRoute::null(s.destinations[rng.gen_range(0..s.destinations.len())]),
            },
            _ => ConfigDelta::StaticRouteRemove {
                device,
                prefix: s.destinations[rng.gen_range(0..s.destinations.len())],
            },
        }
    };

    let mut scoped_savings = 0usize;
    for seed in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(5000 + seed);
        let session = IncrementalVerifier::new(s.network.clone());
        session.verify(&policy, 7, &scenario, &options);
        for step in 0..4 {
            let pre = session.snapshot().network().clone();
            let delta = random_delta(&mut rng, &pre);
            if session.apply_delta(&delta).is_err() {
                continue; // NoOp (e.g. raising an up link): nothing to check
            }
            let post = session.snapshot().network().clone();

            let (n_pre, scoped_pre) = keys_of(&pre, OspfSliceMode::Scoped);
            let (n_post, scoped_post) = keys_of(&post, OspfSliceMode::Scoped);
            let (_, global_pre) = keys_of(&pre, OspfSliceMode::Global);
            let (_, global_post) = keys_of(&post, OspfSliceMode::Global);
            assert_eq!(n_pre, n_post, "seed {seed} step {step}: partition stable");
            for p in 0..n_pre {
                let pec = PecId(p as u32);
                let global_clean = global_pre.key(pec, 0) == global_post.key(pec, 0);
                let scoped_clean = scoped_pre.key(pec, 0) == scoped_post.key(pec, 0);
                assert!(
                    !global_clean || scoped_clean,
                    "seed {seed} step {step} {pec}: scoped key dirtied where the oracle is clean \
                     (delta {})",
                    delta.kind()
                );
                scoped_savings += (scoped_clean && !global_clean) as usize;
            }

            let (incremental, _) = session.verify(&policy, 7, &scenario, &options);
            let scratch = Plankton::new(post).verify(&policy, &scenario, &options);
            assert_eq!(
                incremental.normalized_json(),
                scratch.normalized_json(),
                "seed {seed} step {step}: merged report diverged after {}",
                delta.kind()
            );
        }
    }
    assert!(
        scoped_savings > 0,
        "the soak never exercised a scoped-clean/oracle-dirty key — it proves nothing"
    );
}

#[test]
fn planktond_exits_nonzero_when_any_request_fails_to_parse() {
    use std::io::Write;
    use std::process::{Command, Stdio};
    let mut child = Command::new(env!("CARGO_BIN_EXE_planktond"))
        .args(["--scenario", "ring:4"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn planktond");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"this is not json\n\"Stats\"\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(
        !out.status.success(),
        "a parse failure must surface in the exit code"
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("bad request"), "error reply served: {text}");
    assert!(
        text.contains("\"parse_errors\":1"),
        "the loop keeps serving and counts the bad line: {text}"
    );
}

#[test]
fn planktond_exits_zero_on_a_clean_stream() {
    use std::io::Write;
    use std::process::{Command, Stdio};
    for input in ["\"Stats\"\n\"Shutdown\"\n", "\"Stats\"\n"] {
        let mut child = Command::new(env!("CARGO_BIN_EXE_planktond"))
            .args(["--scenario", "ring:4"])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn planktond");
        child
            .stdin
            .as_mut()
            .unwrap()
            .write_all(input.as_bytes())
            .unwrap();
        let out = child.wait_with_output().unwrap();
        assert!(
            out.status.success(),
            "clean stream (shutdown or EOF) must exit 0"
        );
    }
}

#[test]
fn ibgp_over_ospf_deltas_match_from_scratch() {
    let s = isp_ibgp_over_ospf(&AsTopologySpec::paper_as(3967));
    let sources: Vec<NodeId> = s
        .as_topology
        .backbone
        .iter()
        .filter(|n| !s.borders.contains(n))
        .take(2)
        .copied()
        .collect();
    let policy = Reachability::new(sources);
    let scenario = FailureScenario::no_failures();
    let options = default_options().restricted_to(s.bgp_destinations.clone());

    // A BGP policy edit on a border router.
    let border = s.borders[0];
    let peer = s
        .network
        .device(border)
        .bgp
        .as_ref()
        .unwrap()
        .neighbors
        .first()
        .unwrap()
        .peer;
    assert_delta_incremental(
        "ibgp policy edit",
        &s.network,
        ConfigDelta::BgpPolicyEdit {
            device: border,
            peer,
            import: Some(RouteMap::permit_all()),
            export: None,
        },
        &policy,
        &scenario,
        options.clone(),
    );

    // An OSPF cost change in the underlay must propagate through the
    // dependency graph and re-verify the dependent BGP PECs too.
    let device = s.as_topology.backbone[0];
    let link = s.network.topology.neighbors(device)[0].1;
    assert_delta_incremental(
        "ibgp underlay cost change",
        &s.network,
        ConfigDelta::OspfCostChange {
            device,
            link,
            cost: 321,
        },
        &policy,
        &scenario,
        options,
    );
}

/// The deterministic fields of a wire report summary — everything except
/// wall clock and cache accounting (how much was served from cache depends
/// on request interleaving; what was computed must not).
fn semantic_key(r: &plankton::service::ReportSummary) -> (bool, usize, usize, usize, u64, u64) {
    (
        r.holds,
        r.violations,
        r.pecs_verified,
        r.failure_sets_explored,
        r.data_planes_checked,
        r.states_explored,
    )
}

/// Concurrent-client soak against one daemon: N reader threads issue
/// interleaved `Verify`/`Query`/`Stats` over their own socket connections
/// while a writer connection toggles a static-route delta on and off.
/// Every report any reader receives must semantically equal the fresh
/// single-threaded verification of one of the two network states (the
/// byte-level identity of full merged reports under this exact race is
/// asserted by `concurrent_verifies_race_deltas_without_torn_snapshots` in
/// plankton-core, where full reports are reachable).
#[cfg(unix)]
#[test]
fn concurrent_client_soak_matches_single_threaded_oracles() {
    use plankton::service::{
        connect_with_retry, PolicySpec, Request, Response, ServeOptions, ServiceSession,
    };
    use std::io::{BufRead, BufReader, Write};
    use std::time::Duration;

    let s = fat_tree_ospf(4, CoreStaticRoutes::MatchingOspf);
    let verify = Request::Verify {
        policy: PolicySpec::LoopFreedom,
        options: None,
    };
    let add = ConfigDelta::StaticRouteAdd {
        device: s.fat_tree.core[0],
        route: StaticRoute::null(s.destinations[0]),
    };
    let remove = ConfigDelta::StaticRouteRemove {
        device: s.fat_tree.core[0],
        prefix: s.destinations[0],
    };

    // Oracles: fresh single-threaded sessions, one per network state.
    let oracle_of = |network: &Network| {
        let session = ServiceSession::with_network(network.clone());
        let Response::Report(report) = session.handle(&verify) else {
            panic!("oracle verify failed");
        };
        semantic_key(&report)
    };
    let base_oracle = oracle_of(&s.network);
    let mut edited = s.network.clone();
    add.apply(&mut edited).unwrap();
    let edited_oracle = oracle_of(&edited);

    let dir = std::env::temp_dir().join(format!("plankton-soak-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("planktond.sock");
    let session = ServiceSession::with_network(s.network.clone());
    let timeout = Duration::from_secs(30);
    std::thread::scope(|scope| {
        let server = scope.spawn(|| {
            plankton::service::serve_unix(&session, &path, &ServeOptions { workers: 8 }).unwrap()
        });
        let readers: Vec<_> = (0..3)
            .map(|_| {
                scope.spawn(|| {
                    let stream = connect_with_retry(&path, timeout).unwrap();
                    let mut reader = BufReader::new(stream.try_clone().unwrap());
                    let mut writer = stream;
                    let mut reports = Vec::new();
                    for round in 0..4 {
                        let request = if round % 2 == 0 {
                            verify.to_line()
                        } else {
                            "\"Stats\"".to_string()
                        };
                        writer.write_all(format!("{request}\n").as_bytes()).unwrap();
                        let mut line = String::new();
                        reader.read_line(&mut line).unwrap();
                        match serde_json::from_str::<Response>(&line).unwrap() {
                            Response::Report(summary) => reports.push(semantic_key(&summary)),
                            Response::Stats(_) => {}
                            other => panic!("unexpected response {other:?}"),
                        }
                    }
                    reports
                })
            })
            .collect();
        let writer_thread = scope.spawn(|| {
            let stream = connect_with_retry(&path, timeout).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            for i in 0..6 {
                let delta = if i % 2 == 0 { &add } else { &remove };
                let request = Request::ApplyDelta {
                    delta: delta.clone(),
                };
                writer
                    .write_all(format!("{}\n", request.to_line()).as_bytes())
                    .unwrap();
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                assert!(
                    matches!(
                        serde_json::from_str::<Response>(&line).unwrap(),
                        Response::DeltaApplied(_)
                    ),
                    "delta rejected: {line}"
                );
            }
        });
        writer_thread.join().unwrap();
        for reader in readers {
            for key in reader.join().unwrap() {
                assert!(
                    key == base_oracle || key == edited_oracle,
                    "a concurrent report matched neither network state: {key:?}"
                );
            }
        }
        // Shut the daemon down and verify the drain completes.
        let stream = connect_with_retry(&path, timeout).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        writer.write_all(b"\"Shutdown\"\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        server.join().unwrap();
    });
    let _ = std::fs::remove_dir_all(&dir);
}

/// Kill-and-restart: a daemon with `--cache-dir` persists its result cache
/// at shutdown, and the restarted daemon serves a delta-free re-verify
/// entirely from the warm cache — `tasks_cached` equals the task count,
/// zero tasks re-run, and the report's semantic fields match the cold run.
#[test]
fn daemon_restart_with_cache_dir_serves_reverify_from_warm_cache() {
    use plankton::service::Response;
    use std::io::Write;
    use std::process::{Command, Stdio};

    let dir = std::env::temp_dir().join(format!("plankton-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let run_daemon = |input: &str| -> Vec<Response> {
        let mut child = Command::new(env!("CARGO_BIN_EXE_planktond"))
            .args([
                "--scenario",
                "fat-tree:4",
                "--cache-dir",
                dir.to_str().unwrap(),
            ])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn planktond");
        child
            .stdin
            .as_mut()
            .unwrap()
            .write_all(input.as_bytes())
            .unwrap();
        let out = child.wait_with_output().unwrap();
        assert!(out.status.success(), "daemon exited non-zero");
        String::from_utf8_lossy(&out.stdout)
            .lines()
            .map(|l| serde_json::from_str(l).expect("response parses"))
            .collect()
    };

    let verify_line = r#"{"Verify": {"policy": "LoopFreedom", "options": {"max_failures": 1}}}"#;
    let cold = run_daemon(&format!("{verify_line}\n\"Shutdown\"\n"));
    let Response::Report(cold_report) = &cold[0] else {
        panic!("expected report, got {:?}", cold[0]);
    };
    assert!(cold_report.run.tasks_rerun > 0, "cold run does fresh work");
    assert!(
        dir.join("cache.json").exists(),
        "shutdown persisted the cache"
    );

    // The restarted process is a genuinely new daemon: only the cache file
    // connects it to the first run.
    let warm = run_daemon(&format!("{verify_line}\n\"Stats\"\n\"Shutdown\"\n"));
    let Response::Report(warm_report) = &warm[0] else {
        panic!("expected report, got {:?}", warm[0]);
    };
    assert_eq!(warm_report.run.tasks_rerun, 0, "{:?}", warm_report.run);
    assert!(warm_report.run.tasks_cached > 0);
    assert_eq!(
        warm_report.run.tasks_cached, warm_report.run.tasks_total,
        "a delta-free re-verify is served fully from the cache"
    );
    assert_eq!(semantic_key(warm_report), semantic_key(cold_report));
    let Response::Stats(stats) = &warm[1] else {
        panic!("expected stats, got {:?}", warm[1]);
    };
    assert!(stats.cache_entries > 0, "warm-started entries resident");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `planktonctl --pipeline` drives a multi-request batch against a freshly
/// spawned daemon: the connect retry absorbs the bind race and the client
/// gets one response line per request, in order.
#[cfg(unix)]
#[test]
fn planktonctl_pipelines_a_batch_against_a_starting_daemon() {
    use std::process::{Command, Stdio};

    let dir = std::env::temp_dir().join(format!("plankton-ctl-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let sock = dir.join("planktond.sock");
    let mut daemon = Command::new(env!("CARGO_BIN_EXE_planktond"))
        .args(["--scenario", "ring:4", "--socket", sock.to_str().unwrap()])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn planktond");
    // No wait loop here: planktonctl's own retry must absorb the race.
    let out = Command::new(env!("CARGO_BIN_EXE_planktonctl"))
        .args([
            "--socket",
            sock.to_str().unwrap(),
            "--timeout",
            "30",
            "--pipeline",
            r#"{"Verify": {"policy": "LoopFreedom"}}"#,
            r#"{"ApplyDelta": {"delta": {"LinkDown": {"link": 0}}}}"#,
            r#"{"Verify": {"policy": "LoopFreedom"}}"#,
            "\"Stats\"",
            "\"Shutdown\"",
        ])
        .output()
        .expect("run planktonctl");
    assert!(out.status.success(), "planktonctl failed");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let responses: Vec<&str> = stdout.lines().collect();
    assert_eq!(responses.len(), 5, "one response per request: {stdout}");
    assert!(responses[0].contains("\"Report\""));
    assert!(responses[1].contains("\"DeltaApplied\""));
    assert!(responses[2].contains("\"Report\""));
    assert!(responses[3].contains("\"Stats\""));
    assert!(responses[4].contains("\"Ok\""));
    assert!(daemon.wait().unwrap().success(), "daemon shut down cleanly");
    let _ = std::fs::remove_dir_all(&dir);
}
