//! Observability tests: the flight recorder, per-task cost attribution,
//! and the introspection protocol (`Dump`, `Top`) against spawned daemons.
//!
//! The contract under test is the post-mortem story: a failed request must
//! be fully reconstructable *after the fact* from a daemon that was started
//! with **no** `--log-json` sink — the in-memory flight recorder retains
//! the causal chain and `Dump {trace_id}` retrieves it. The attribution
//! registry must agree with the `plankton_task_seconds` histogram within
//! one powers-of-four bucket, and a graceful shutdown must leave the JSONL
//! log ending with a durable `shutdown` event.

use plankton::service::{error_kind, DumpEvent, Response};
use std::io::{BufRead, BufReader, Write};
use std::process::{Child, ChildStdout, Command, Stdio};

const VERIFY_LINE: &str =
    r#"{"Verify": {"policy": "LoopFreedom", "options": {"max_failures": 1, "cores": 2}}}"#;

/// A daemon on piped stdio we can talk to in lockstep: send one request
/// line, read one response line — the interactive shape `Dump {trace_id}`
/// needs (the trace id comes out of an earlier response).
struct Daemon {
    child: Child,
    reader: BufReader<ChildStdout>,
}

impl Daemon {
    fn spawn(args: &[&str], failpoints: Option<&str>) -> Self {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_planktond"));
        cmd.args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        if let Some(spec) = failpoints {
            cmd.env(plankton_faultinject::ENV_VAR, spec);
        }
        let mut child = cmd.spawn().expect("spawn planktond");
        let reader = BufReader::new(child.stdout.take().expect("piped stdout"));
        Daemon { child, reader }
    }

    fn request(&mut self, line: &str) -> Response {
        self.child
            .stdin
            .as_mut()
            .unwrap()
            .write_all(format!("{line}\n").as_bytes())
            .expect("write request");
        let mut response = String::new();
        self.reader.read_line(&mut response).expect("read response");
        assert!(!response.is_empty(), "daemon closed before responding");
        serde_json::from_str(&response).expect("response parses")
    }

    fn shutdown(mut self) {
        let _ = self
            .child
            .stdin
            .as_mut()
            .unwrap()
            .write_all(b"\"Shutdown\"\n");
        let _ = self.child.wait();
    }
}

fn dump(daemon: &mut Daemon, trace_id: Option<u64>, last: Option<usize>) -> Vec<DumpEvent> {
    let trace = trace_id.map_or("null".to_string(), |t| t.to_string());
    let last = last.map_or("null".to_string(), |n| n.to_string());
    let response = daemon.request(&format!(
        "{{\"Dump\":{{\"trace_id\":{trace},\"last\":{last}}}}}"
    ));
    let Response::Dump { events, .. } = response else {
        panic!("expected dump, got {response:?}");
    };
    events
}

/// The headline acceptance test: a daemon started with **no** `--log-json`
/// sink answers a faulted verify with `Error {kind, trace_id}`, and that
/// trace id alone reconstructs the request's causal chain — the `request`
/// event and the `verify_task_panicked` event — via `Dump`. Repeating the
/// dump returns the identical event list (the recorder is a stable
/// snapshot, not a draining queue).
#[test]
fn faulted_verify_is_reconstructable_via_dump_without_a_log_sink() {
    let mut daemon = Daemon::spawn(&["--scenario", "ring:4"], Some("task=panic*1"));

    let response = daemon.request(VERIFY_LINE);
    let Response::Error { kind, trace_id, .. } = response else {
        panic!("expected a structured error, got {response:?}");
    };
    assert_eq!(kind, error_kind::TASK_PANICKED);
    assert!(trace_id > 0, "the error must be stamped with its trace id");

    let events = dump(&mut daemon, Some(trace_id), None);
    assert!(!events.is_empty(), "the chain must be retained in memory");
    assert!(
        events.iter().all(|e| e.trace == trace_id),
        "trace filter leaked foreign events: {events:?}"
    );
    let names: Vec<&str> = events.iter().map(|e| e.event.as_str()).collect();
    assert!(names.contains(&"request"), "{names:?}");
    assert!(names.contains(&"verify_task_panicked"), "{names:?}");
    let request = events.iter().find(|e| e.event == "request").unwrap();
    assert!(request.json.contains("\"kind\":\"verify\""), "{request:?}");
    assert!(
        events.windows(2).all(|w| w[0].seq < w[1].seq),
        "events arrive in recorder order"
    );

    // Determinism: the same dump twice is byte-identical.
    let again = dump(&mut daemon, Some(trace_id), None);
    assert_eq!(
        events.iter().map(|e| &e.json).collect::<Vec<_>>(),
        again.iter().map(|e| &e.json).collect::<Vec<_>>()
    );

    // The recovery path still works; its trace is a *different* chain.
    let recovered = daemon.request(VERIFY_LINE);
    assert!(matches!(recovered, Response::Report(_)), "{recovered:?}");
    daemon.shutdown();
}

/// `Top` agrees with the engine's `plankton_task_seconds` histogram within
/// one powers-of-four bucket: both clocks wrap the same task execution, so
/// their *sums* must land in the same (or an adjacent) bucket of the
/// ladder the histogram itself uses.
#[test]
fn top_totals_are_consistent_with_the_task_seconds_histogram() {
    let mut daemon = Daemon::spawn(&["--scenario", "ring:6"], None);
    let verified = daemon.request(VERIFY_LINE);
    assert!(matches!(verified, Response::Report(_)), "{verified:?}");

    let response = daemon.request("{\"Top\":{\"k\":0}}");
    let Response::Top {
        rows,
        total_micros,
        tasks_tracked,
    } = response
    else {
        panic!("expected top, got {response:?}");
    };
    assert!(!rows.is_empty(), "a verify must leave attribution rows");
    assert!(tasks_tracked as usize >= rows.len());
    assert!(total_micros > 0);
    assert!(
        rows.windows(2)
            .all(|w| w[0].total_micros >= w[1].total_micros),
        "hottest-first ordering: {rows:?}"
    );
    let row_sum: u64 = rows.iter().map(|r| r.total_micros).sum();
    assert!(row_sum <= total_micros, "rows are a subset of the total");

    let Response::MetricsText { text } = daemon.request("\"Metrics\"") else {
        panic!("expected metrics");
    };
    let sum_line = text
        .lines()
        .find(|l| l.starts_with("plankton_task_seconds_sum"))
        .expect("task histogram rendered");
    let histogram_secs: f64 = sum_line
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .expect("sum parses");
    let histogram_micros = histogram_secs * 1e6;

    // Same powers-of-four ladder the histogram buckets observations with:
    // the two totals must fall in the same or adjacent buckets.
    let bucket = |us: f64| -> usize {
        plankton_telemetry::metrics::BUCKET_BOUNDS
            .iter()
            .position(|&b| us <= b as f64)
            .unwrap_or(plankton_telemetry::metrics::BUCKET_BOUNDS.len())
    };
    let attribution_bucket = bucket(total_micros as f64);
    let histogram_bucket = bucket(histogram_micros);
    assert!(
        attribution_bucket.abs_diff(histogram_bucket) <= 1,
        "attribution total {total_micros}us (bucket {attribution_bucket}) vs \
         histogram sum {histogram_micros}us (bucket {histogram_bucket})"
    );
    daemon.shutdown();
}

/// `--slow-task-ms 0` flags every task: the `slow_task` warn events land in
/// the flight recorder carrying the attribution totals (`task_runs`,
/// `task_total_us`), so a post-mortem dump shows not just *that* a task was
/// slow but its accumulated history.
#[test]
fn slow_task_threshold_zero_puts_attribution_totals_in_the_dump() {
    let mut daemon = Daemon::spawn(&["--scenario", "ring:4", "--slow-task-ms", "0"], None);
    let verified = daemon.request(VERIFY_LINE);
    assert!(matches!(verified, Response::Report(_)), "{verified:?}");

    let events = dump(&mut daemon, None, None);
    let slow: Vec<&DumpEvent> = events.iter().filter(|e| e.event == "slow_task").collect();
    assert!(!slow.is_empty(), "threshold 0 must flag every task");
    for event in &slow {
        assert_eq!(event.level, "warn");
        assert!(event.json.contains("\"task_runs\":"), "{}", event.json);
        assert!(event.json.contains("\"task_total_us\":"), "{}", event.json);
        assert!(event.json.contains("\"pec\":"), "{}", event.json);
    }
    daemon.shutdown();
}

/// `--last` truncation composes with the trace filter, and `Dump` against a
/// daemon started with `--recorder-capacity 0` answers a structured error
/// rather than an empty success — "recorder off" must be distinguishable
/// from "nothing happened".
#[test]
fn dump_last_truncates_and_a_disabled_recorder_errors_structurally() {
    let mut daemon = Daemon::spawn(&["--scenario", "ring:4"], None);
    let verified = daemon.request(VERIFY_LINE);
    assert!(matches!(verified, Response::Report(_)));
    let all = dump(&mut daemon, None, None);
    assert!(all.len() > 2);
    // Each Dump records its own `request` event before snapshotting, so the
    // second dump's tail is the first dump's last event plus exactly that
    // one new event — deterministic on the sequential stdio transport.
    let last_two = dump(&mut daemon, None, Some(2));
    let tail: Vec<u64> = last_two.iter().map(|e| e.seq).collect();
    let prev_last = all.last().unwrap().seq;
    assert_eq!(tail, vec![prev_last, prev_last + 1], "{last_two:?}");
    assert_eq!(last_two[1].event, "request", "{last_two:?}");
    daemon.shutdown();

    let mut disabled = Daemon::spawn(&["--scenario", "ring:4", "--recorder-capacity", "0"], None);
    let response = disabled.request("{\"Dump\":{}}");
    let Response::Error { kind, message, .. } = response else {
        panic!("a disabled recorder must error, got {response:?}");
    };
    assert_eq!(kind, error_kind::REQUEST);
    assert!(message.contains("recorder"), "{message}");
    disabled.shutdown();
}

/// A graceful shutdown flushes and fsyncs the `--log-json` sink: the final
/// event on disk is `shutdown`, even though the process exits immediately
/// after — the log never ends mid-buffer.
#[test]
fn graceful_shutdown_leaves_the_jsonl_log_ending_with_a_shutdown_event() {
    let dir = std::env::temp_dir().join(format!("plankton-obs-log-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let log = dir.join("plankton.jsonl");

    let mut daemon = Daemon::spawn(
        &["--scenario", "ring:4", "--log-json", log.to_str().unwrap()],
        None,
    );
    let verified = daemon.request(VERIFY_LINE);
    assert!(matches!(verified, Response::Report(_)));
    daemon.shutdown();

    let text = std::fs::read_to_string(&log).expect("log written");
    let last = text.lines().last().expect("log non-empty");
    assert!(
        last.contains("\"event\":\"shutdown\""),
        "the log must end with the shutdown event, got: {last}"
    );
    assert!(last.contains("\"parse_errors\":0"), "{last}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The `planktonctl` post-mortem loop over a socket, end to end: induce a
/// panic, read the `trace_id` off the Error response, `planktonctl dump
/// --trace` it and find the causal chain in the *dump output* (no log file
/// exists), then `planktonctl top --once` shows a non-empty hottest row.
#[cfg(unix)]
#[test]
fn planktonctl_dump_and_top_work_the_post_mortem_over_a_socket() {
    let dir = std::env::temp_dir().join(format!("plankton-obs-ctl-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let sock = dir.join("planktond.sock");
    let sock_str = sock.to_str().unwrap();

    let mut cmd = Command::new(env!("CARGO_BIN_EXE_planktond"));
    cmd.args(["--scenario", "ring:4", "--socket", sock_str])
        .env(plankton_faultinject::ENV_VAR, "task=panic*1")
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    let mut daemon = cmd.spawn().expect("spawn planktond");

    let ctl = |args: &[&str]| -> std::process::Output {
        Command::new(env!("CARGO_BIN_EXE_planktonctl"))
            .args(["--socket", sock_str, "--timeout", "30"])
            .args(args)
            .output()
            .expect("run planktonctl")
    };

    // The faulted verify answers an Error carrying its trace id.
    let faulted = ctl(&[VERIFY_LINE]);
    assert!(faulted.status.success());
    let line = String::from_utf8_lossy(&faulted.stdout);
    let Ok(Response::Error { kind, trace_id, .. }) = serde_json::from_str::<Response>(line.trim())
    else {
        panic!("expected an error response, got {line}");
    };
    assert_eq!(kind, error_kind::TASK_PANICKED);
    assert!(trace_id > 0);

    // `dump --trace` reconstructs the chain from daemon memory alone.
    let dumped = ctl(&["dump", "--trace", &trace_id.to_string()]);
    assert!(dumped.status.success());
    let dump_out = String::from_utf8_lossy(&dumped.stdout);
    assert!(dump_out.contains("\"event\":\"request\""), "{dump_out}");
    assert!(
        dump_out.contains("\"event\":\"verify_task_panicked\""),
        "{dump_out}"
    );

    // A clean verify populates attribution; `top --once` renders it.
    let recovered = ctl(&[VERIFY_LINE]);
    assert!(recovered.status.success());
    assert!(String::from_utf8_lossy(&recovered.stdout).contains("Report"));
    let top = ctl(&["top", "--once", "-k", "3"]);
    assert!(top.status.success());
    let top_out = String::from_utf8_lossy(&top.stdout);
    assert!(top_out.contains("FAILURES"), "{top_out}");
    assert!(
        top_out.lines().count() >= 3,
        "header + at least one row: {top_out}"
    );
    assert!(!top_out.contains("no tasks recorded"), "{top_out}");

    let shutdown = ctl(&["\"Shutdown\""]);
    assert!(shutdown.status.success());
    let _ = daemon.wait();
    let _ = std::fs::remove_dir_all(&dir);
}
