//! End-to-end observability tests: drive a real `planktond` process and
//! assert (a) the JSONL event log reconstructs the causal chain of a delta
//! (request → delta applied → keys invalidated → tasks re-run → report
//! merged) with one trace id per request, and (b) the `Metrics` request
//! renders the live metric families as Prometheus text exposition.

use std::io::Write;
use std::process::{Command, Stdio};

/// Spawn `planktond --scenario ring:4 --log-json <log>` and feed it
/// `input` on stdin; returns (stdout, exit-success).
fn run_daemon_logged(input: &str, log: &std::path::Path) -> (String, bool) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_planktond"))
        .args(["--scenario", "ring:4", "--log-json", log.to_str().unwrap()])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn planktond");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(input.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        out.status.success(),
    )
}

fn events_of(log: &std::path::Path) -> Vec<serde::Value> {
    std::fs::read_to_string(log)
        .expect("log file written")
        .lines()
        .map(|l| serde_json::from_str(l).unwrap_or_else(|e| panic!("bad JSONL line {l:?}: {e}")))
        .collect()
}

fn field_u64(event: &serde::Value, key: &str) -> u64 {
    match event.get(key) {
        Some(serde::Value::UInt(n)) => *n,
        Some(serde::Value::Int(n)) if *n >= 0 => *n as u64,
        other => panic!("event field {key} is not a u64: {other:?} in {event:?}"),
    }
}

fn field_str<'a>(event: &'a serde::Value, key: &str) -> &'a str {
    match event.get(key) {
        Some(serde::Value::Str(s)) => s,
        other => panic!("event field {key} is not a string: {other:?} in {event:?}"),
    }
}

/// The tentpole's reconstruction guarantee: from the JSONL log alone, a
/// delta's whole causal chain is recoverable, keyed by trace id — and a
/// malformed request line is attributable by position at parse time.
#[test]
fn jsonl_log_reconstructs_the_causal_chain_of_a_delta() {
    let dir = std::env::temp_dir().join(format!("plankton-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let log = dir.join("events.jsonl");
    let verify = r#"{"Verify": {"policy": "LoopFreedom", "options": {"max_failures": 1}}}"#;
    let input = format!(
        "{verify}\n{}\n{verify}\nthis is not json\n\"Shutdown\"\n",
        r#"{"ApplyDelta": {"delta": {"LinkDown": {"link": 0}}}}"#
    );
    let (_, success) = run_daemon_logged(&input, &log);
    assert!(!success, "the malformed line must surface in the exit code");
    let events = events_of(&log);

    // Every event line carries the full schema: timestamp, level, trace,
    // event name.
    for event in &events {
        assert!(field_u64(event, "ts_us") > 0, "{event:?}");
        field_str(event, "level");
        event.get("trace").expect("trace field present");
        field_str(event, "event");
    }

    // One request event per parsed request, each under a fresh trace id.
    let requests: Vec<&serde::Value> = events
        .iter()
        .filter(|e| field_str(e, "event") == "request")
        .collect();
    assert_eq!(requests.len(), 4, "verify, apply_delta, verify, shutdown");
    let trace_ids: Vec<u64> = requests.iter().map(|e| field_u64(e, "trace")).collect();
    for (i, id) in trace_ids.iter().enumerate() {
        assert!(*id > 0, "request events get real trace ids");
        assert!(
            !trace_ids[..i].contains(id),
            "each request gets its own trace id: {trace_ids:?}"
        );
    }
    assert_eq!(field_str(requests[1], "kind"), "apply_delta");

    // The delta's chain: its request trace covers the delta_applied event,
    // and the *following* verify's trace covers invalidation → re-run →
    // merge, in causal order.
    let chain_of = |trace: u64| -> Vec<&str> {
        events
            .iter()
            .filter(|e| field_u64(e, "trace") == trace)
            .map(|e| field_str(e, "event"))
            .collect()
    };
    assert_eq!(chain_of(trace_ids[1]), ["request", "delta_applied"]);
    let reverify = chain_of(trace_ids[2]);
    assert_eq!(
        reverify,
        [
            "request",
            "keys_invalidated",
            "tasks_rerun",
            "report_merged"
        ],
        "the re-verify after the delta logs its full causal chain"
    );
    // And the invalidation event proves the delta actually invalidated a
    // strict subset: some tasks re-ran, some were served from cache.
    let invalidated = events
        .iter()
        .find(|e| {
            field_u64(e, "trace") == trace_ids[2] && field_str(e, "event") == "keys_invalidated"
        })
        .unwrap();
    assert!(field_u64(invalidated, "tasks_rerun") > 0);
    assert!(field_u64(invalidated, "tasks_cached") > 0);

    // The malformed line is attributed at parse time: a warn event with the
    // line's byte length and 1-based position in the stream.
    let parse_error = events
        .iter()
        .find(|e| field_str(e, "event") == "parse_error")
        .expect("parse_error event logged");
    assert_eq!(field_str(parse_error, "level"), "warn");
    assert_eq!(
        field_u64(parse_error, "byte_len"),
        "this is not json".len() as u64
    );
    assert_eq!(
        field_u64(parse_error, "position"),
        4,
        "4th line of the stream"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// A `Metrics` request after real work renders every instrumented family —
/// service, cache, engine, and checker — in Prometheus text exposition.
#[test]
fn metrics_request_renders_prometheus_text_with_live_families() {
    let dir = std::env::temp_dir().join(format!("plankton-metrics-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let log = dir.join("events.jsonl");
    let verify = r#"{"Verify": {"policy": "LoopFreedom", "options": {"max_failures": 1}}}"#;
    let input = format!(
        "{verify}\n{}\n{verify}\n\"Metrics\"\n\"Shutdown\"\n",
        r#"{"ApplyDelta": {"delta": {"LinkDown": {"link": 0}}}}"#
    );
    let (stdout, success) = run_daemon_logged(&input, &log);
    assert!(success, "clean stream exits zero");
    let metrics_line = stdout
        .lines()
        .find(|l| l.contains("\"MetricsText\""))
        .expect("MetricsText response served");
    let response: serde::Value = serde_json::from_str(metrics_line).unwrap();
    let text = response
        .get("MetricsText")
        .and_then(|v| v.get("text"))
        .map(|v| match v {
            serde::Value::Str(s) => s.as_str(),
            other => panic!("text is not a string: {other:?}"),
        })
        .expect("MetricsText.text present");

    for family in [
        "plankton_requests_total",
        "plankton_request_seconds",
        "plankton_cache_hits_total",
        "plankton_cache_misses_total",
        "plankton_cache_entries",
        "plankton_tasks_rerun_total",
        "plankton_tasks_cached_total",
        "plankton_snapshot_swap_seconds",
        "plankton_task_seconds",
        "plankton_rpvp_steps_total",
        "plankton_undo_depth_max",
    ] {
        assert!(
            text.contains(&format!("# TYPE {family}")),
            "family {family} missing from exposition:\n{text}"
        );
    }
    // Labelled series render with their label sets, and the post-delta
    // re-verify made the cache-hit counter move.
    assert!(
        text.contains(r#"plankton_requests_total{kind="verify"} 2"#),
        "{text}"
    );
    assert!(
        text.contains(r#"plankton_requests_total{kind="apply_delta"} 1"#),
        "{text}"
    );
    let hits_line = text
        .lines()
        .find(|l| l.starts_with("plankton_cache_hits_total "))
        .expect("cache hits rendered");
    let hits: u64 = hits_line
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    assert!(hits > 0, "the re-verify hit the cache: {hits_line}");
    // Histograms render cumulative buckets ending in +Inf, plus sum/count.
    assert!(
        text.contains(r#"plankton_request_seconds_bucket{kind="verify",le="+Inf"} 2"#),
        "{text}"
    );
    assert!(
        text.contains(r#"plankton_request_seconds_count{kind="verify"} 2"#),
        "{text}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// `planktonctl metrics` against a live socket daemon prints the raw
/// exposition (not a JSON envelope), ready for a scraper.
#[cfg(unix)]
#[test]
fn planktonctl_metrics_prints_raw_exposition() {
    let dir = std::env::temp_dir().join(format!("plankton-ctlm-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let sock = dir.join("planktond.sock");
    let mut daemon = Command::new(env!("CARGO_BIN_EXE_planktond"))
        .args(["--scenario", "ring:4", "--socket", sock.to_str().unwrap()])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn planktond");
    let ctl = |args: &[&str]| {
        Command::new(env!("CARGO_BIN_EXE_planktonctl"))
            .args(["--socket", sock.to_str().unwrap(), "--timeout", "30"])
            .args(args)
            .output()
            .expect("run planktonctl")
    };
    let verified = ctl(&[r#"{"Verify": {"policy": "LoopFreedom"}}"#]);
    assert!(verified.status.success());
    let out = ctl(&["metrics"]);
    assert!(out.status.success(), "planktonctl metrics failed");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.lines()
            .next()
            .unwrap_or_default()
            .starts_with("# HELP"),
        "raw exposition, not JSON: {text}"
    );
    assert!(text.contains("plankton_requests_total"), "{text}");
    let shutdown = ctl(&["\"Shutdown\""]);
    assert!(shutdown.status.success());
    assert!(daemon.wait().unwrap().success(), "daemon shut down cleanly");
    let _ = std::fs::remove_dir_all(&dir);
}
