//! # plankton
//!
//! A from-scratch Rust implementation of **Plankton** (NSDI 2020): scalable
//! network configuration verification through equivalence partitioning of the
//! packet header space plus explicit-state model checking of an abstract
//! control plane.
//!
//! This umbrella crate re-exports the whole workspace so that applications
//! can depend on a single crate:
//!
//! * [`net`] — topology, addressing, failure environments, workload
//!   generators;
//! * [`config`] — OSPF/BGP/static-route configuration and ready-made
//!   evaluation scenarios;
//! * [`pec`] — packet equivalence classes, the dependency graph and the
//!   dependency-aware scheduler;
//! * [`protocols`] — SPVP, RPVP and the OSPF/BGP protocol models;
//! * [`checker`] — the explicit-state model checker with partial order
//!   reduction, policy-based pruning and state hashing;
//! * [`engine`] — the work-stealing parallel verification engine driving
//!   the (PEC × failure-scenario) task graph across a worker pool;
//! * [`dataplane`] — FIBs and per-PEC forwarding graphs;
//! * [`policy`] — the policy API and the built-in policies;
//! * [`core`] — the [`prelude::Plankton`] verifier itself;
//! * [`baselines`] — the Minesweeper-style, ARC-style and Bonsai baselines.
//!
//! ## Quick start
//!
//! ```
//! use plankton::prelude::*;
//!
//! // An 8-router OSPF ring where router 0 originates 10.99.0.0/24.
//! let scenario = plankton::config::scenarios::ring_ospf(8);
//! let sources: Vec<_> = scenario.ring.routers[1..].to_vec();
//!
//! let verifier = Plankton::new(scenario.network.clone());
//! let report = verifier.verify(
//!     &Reachability::new(sources),
//!     &FailureScenario::up_to(1),
//!     &PlanktonOptions::default().restricted_to(vec![scenario.destination]),
//! );
//! assert!(report.holds());
//! ```

pub use plankton_baselines as baselines;
pub use plankton_checker as checker;
pub use plankton_config as config;
pub use plankton_core as core;
pub use plankton_dataplane as dataplane;
pub use plankton_engine as engine;
pub use plankton_net as net;
pub use plankton_pec as pec;
pub use plankton_policy as policy;
pub use plankton_protocols as protocols;
pub use plankton_service as service;

/// The most commonly used items, for `use plankton::prelude::*`.
pub mod prelude {
    pub use plankton_config::Network;
    pub use plankton_core::{Plankton, PlanktonOptions, VerificationReport};
    pub use plankton_net::failure::{FailureScenario, FailureSet};
    pub use plankton_net::ip::{IpRange, Ipv4Addr, Prefix};
    pub use plankton_net::topology::{LinkId, NodeId, Topology, TopologyBuilder};
    pub use plankton_policy::{
        BlackholeFreedom, BoundedPathLength, LoopFreedom, MultipathConsistency, PathConsistency,
        Policy, PolicyResult, Reachability, Waypoint,
    };
}
