//! `plankton` — command-line front end to the verifier.
//!
//! ```text
//! plankton verify --config network.json --policy reachability \
//!          --source r1 --source r2 --prefix 10.0.0.0/24 --max-failures 1
//! plankton pecs --config network.json
//! ```
//!
//! The configuration file is the serde/JSON form of
//! [`plankton::config::Network`] (see `Network::to_json`); the examples and
//! scenario builders can emit it.

use plankton::prelude::*;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage:\n  plankton verify --config <file.json> --policy <reachability|loop|blackhole|waypoint|bounded-path-length> \\\n                  [--source <node-name>]... [--waypoint <node-name>]... [--prefix <a.b.c.d/len>]... \\\n                  [--max-failures <k>] [--max-hops <n>] [--cores <n>] [--all-violations] [--sequential]\n  plankton pecs   --config <file.json>"
    );
    exit(2);
}

struct Args {
    command: String,
    config: Option<String>,
    policy: Option<String>,
    sources: Vec<String>,
    waypoints: Vec<String>,
    prefixes: Vec<Prefix>,
    max_failures: usize,
    max_hops: usize,
    cores: usize,
    all_violations: bool,
    sequential: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        command: String::new(),
        config: None,
        policy: None,
        sources: Vec::new(),
        waypoints: Vec::new(),
        prefixes: Vec::new(),
        max_failures: 0,
        max_hops: 16,
        cores: 1,
        all_violations: false,
        sequential: false,
    };
    let mut iter = std::env::args().skip(1);
    match iter.next() {
        Some(c) if c == "verify" || c == "pecs" => args.command = c,
        _ => usage(),
    }
    while let Some(flag) = iter.next() {
        let mut value = || iter.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--config" => args.config = Some(value()),
            "--policy" => args.policy = Some(value()),
            "--source" => args.sources.push(value()),
            "--waypoint" => args.waypoints.push(value()),
            "--prefix" => match value().parse() {
                Ok(p) => args.prefixes.push(p),
                Err(e) => {
                    eprintln!("bad --prefix: {e}");
                    exit(2);
                }
            },
            "--max-failures" => args.max_failures = value().parse().unwrap_or_else(|_| usage()),
            "--max-hops" => args.max_hops = value().parse().unwrap_or_else(|_| usage()),
            "--cores" => args.cores = value().parse().unwrap_or_else(|_| usage()),
            "--all-violations" => args.all_violations = true,
            "--sequential" => args.sequential = true,
            _ => usage(),
        }
    }
    args
}

fn resolve_nodes(network: &Network, names: &[String]) -> Vec<NodeId> {
    names
        .iter()
        .map(|name| {
            network.topology.node_by_name(name).unwrap_or_else(|| {
                eprintln!("unknown device {name:?}");
                exit(2);
            })
        })
        .collect()
}

fn main() {
    let args = parse_args();
    let Some(config_path) = &args.config else {
        usage()
    };
    let text = std::fs::read_to_string(config_path).unwrap_or_else(|e| {
        eprintln!("cannot read {config_path}: {e}");
        exit(1);
    });
    let network = Network::from_json(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {config_path}: {e}");
        exit(1);
    });
    let problems = network.validate();
    for p in &problems {
        eprintln!("config warning: {p}");
    }

    let verifier = Plankton::new(network.clone());
    if args.command == "pecs" {
        println!(
            "{} devices, {} links, {} packet equivalence classes ({} active), largest dependency SCC {}",
            network.node_count(),
            network.topology.link_count(),
            verifier.pecs().len(),
            verifier.pecs().active_pecs().len(),
            verifier.dependencies().largest_component(),
        );
        for pec in verifier.pecs().active_pecs() {
            let prefixes: Vec<String> = pec.prefixes.iter().map(|p| p.prefix.to_string()).collect();
            println!(
                "  {} {} prefixes [{}]",
                pec.id,
                pec.range,
                prefixes.join(", ")
            );
        }
        return;
    }

    let sources = resolve_nodes(&network, &args.sources);
    let waypoints = resolve_nodes(&network, &args.waypoints);
    let policy: Box<dyn Policy> = match args.policy.as_deref() {
        Some("reachability") => Box::new(Reachability::new(sources.clone())),
        Some("loop") => Box::new(LoopFreedom::everywhere()),
        Some("blackhole") => Box::new(BlackholeFreedom::default()),
        Some("waypoint") => Box::new(Waypoint::new(sources.clone(), waypoints)),
        Some("bounded-path-length") => {
            Box::new(BoundedPathLength::new(sources.clone(), args.max_hops))
        }
        _ => usage(),
    };

    let mut options = PlanktonOptions::with_cores(args.cores);
    if !args.prefixes.is_empty() {
        options = options.restricted_to(args.prefixes.clone());
    }
    if args.all_violations {
        options = options.collect_all_violations();
    }
    if args.sequential {
        options = options.sequential();
    }
    let scenario = FailureScenario::up_to(args.max_failures);

    let report = verifier.verify(policy.as_ref(), &scenario, &options);
    println!("{report}");
    if let Some(violation) = report.first_violation() {
        println!("counterexample trail:\n{}", violation.trail);
    }
    exit(if report.holds() { 0 } else { 1 });
}
