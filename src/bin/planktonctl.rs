//! `planktonctl` — client for a running `planktond --socket` daemon.
//!
//! Each positional argument is one JSON request line; with no arguments,
//! request lines are read from stdin. Responses are printed one per line.
//! Connection attempts retry with a short backoff until `--timeout` (the
//! daemon may still be binding its socket), and `--pipeline` writes every
//! request before reading any response — one round trip for a whole batch
//! against the concurrent daemon.
//!
//! ```text
//! planktonctl --socket /tmp/p.sock '"Stats"'
//! planktonctl --socket /tmp/p.sock --timeout 10 --pipeline \
//!   '{"ApplyDelta": {"delta": {"LinkDown": {"link": 3}}}}' \
//!   '{"Verify": {"policy": "LoopFreedom"}}' \
//!   '"Persist"'
//! planktonctl --socket /tmp/p.sock metrics   # Prometheus text exposition
//! ```
//!
//! The `metrics` subcommand sends a `Metrics` request and prints the
//! daemon's metrics registry as Prometheus text exposition (unwrapped from
//! the JSON response), ready to pipe to a file a scraper reads.

use std::process::exit;

fn usage() -> ! {
    eprintln!("usage:\n  planktonctl --socket <path> [--timeout <secs>] [--pipeline] [REQUEST_JSON]...\n  planktonctl --socket <path> [--timeout <secs>] metrics\n\nWith no REQUEST_JSON arguments, request lines are read from stdin.\n--timeout bounds the connect retry loop, each socket read, and the\noverloaded-retry loop (default 5s; 0 disables the read timeout);\n--pipeline sends every request before reading the responses. When the\ndaemon sheds a request (`overloaded`, from planktond --max-inflight),\nnon-pipelined requests are retried with the daemon's retry_after_ms\nhint until --timeout elapses. The `metrics` subcommand prints the\ndaemon's metrics as Prometheus text exposition.");
    exit(2);
}

#[cfg(unix)]
fn main() {
    use std::io::{BufRead, BufReader, Write};

    let mut socket: Option<String> = None;
    let mut timeout_secs: f64 = 5.0;
    let mut pipeline = false;
    let mut metrics = false;
    let mut requests: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => socket = Some(args.next().unwrap_or_else(|| usage())),
            "--timeout" => {
                timeout_secs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--pipeline" => pipeline = true,
            "metrics" => metrics = true,
            "--help" | "-h" => usage(),
            // Blank requests get no response line from the daemon; sending
            // one would desync the request/response accounting below.
            _ if arg.trim().is_empty() => {}
            _ => requests.push(arg),
        }
    }
    if metrics && (pipeline || !requests.is_empty()) {
        usage();
    }
    let Some(path) = socket else { usage() };
    let timeout = std::time::Duration::from_secs_f64(timeout_secs.max(0.0));
    let stream = plankton_service::connect_with_retry(path.as_ref(), timeout).unwrap_or_else(|e| {
        eprintln!("cannot connect to {path}: {e}");
        exit(1);
    });
    // `--timeout` also bounds each socket read: a daemon that accepted the
    // connection but stopped responding (wedged, SIGSTOPped, mid-crash)
    // fails this client loudly instead of hanging it forever. 0 disables.
    if !timeout.is_zero() {
        stream
            .set_read_timeout(Some(timeout))
            .expect("set read timeout");
    }
    let mut reader = BufReader::new(stream.try_clone().expect("clone socket"));
    let mut writer = stream;

    let send = |writer: &mut std::os::unix::net::UnixStream, line: &str| {
        writer
            .write_all(format!("{}\n", line.trim()).as_bytes())
            .expect("write request");
    };
    let read_response = |reader: &mut BufReader<std::os::unix::net::UnixStream>| -> String {
        let mut response = String::new();
        match reader.read_line(&mut response) {
            // EOF before the response: the daemon died or dropped the
            // connection mid-session. Scripts key on the exit code — a
            // truncated batch must not look like success.
            Ok(0) => {
                eprintln!("planktonctl: connection closed by daemon before a response");
                exit(1);
            }
            Ok(_) => response,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                eprintln!("planktonctl: timed out after {timeout_secs}s waiting for a response");
                exit(1);
            }
            Err(e) => {
                eprintln!("planktonctl: read error: {e}");
                exit(1);
            }
        }
    };
    let receive = |reader: &mut BufReader<std::os::unix::net::UnixStream>| {
        print!("{}", read_response(reader));
    };
    // Lockstep paths retry a shed request (`overloaded` from planktond
    // --max-inflight) with the daemon's own retry hint, bounded by
    // --timeout — transient overload looks like a slow response, not a
    // failure. Pipelined batches are not retried: responses interleave and
    // a mid-batch re-send would desync request/response accounting.
    let send_with_retry = |writer: &mut std::os::unix::net::UnixStream,
                           reader: &mut BufReader<std::os::unix::net::UnixStream>,
                           line: &str| {
        let start = std::time::Instant::now();
        loop {
            send(writer, line);
            let response = read_response(reader);
            if let Ok(plankton_service::Response::Error {
                kind,
                retry_after_ms,
                ..
            }) = serde_json::from_str::<plankton_service::Response>(&response)
            {
                if kind == "overloaded" && start.elapsed() < timeout {
                    let wait = retry_after_ms.unwrap_or(100);
                    eprintln!("planktonctl: daemon overloaded, retrying in {wait}ms");
                    std::thread::sleep(std::time::Duration::from_millis(wait));
                    continue;
                }
            }
            print!("{response}");
            return;
        }
    };

    if metrics {
        // One request, one response — but the payload is a whole Prometheus
        // text page, so unwrap it from the JSON envelope instead of echoing
        // the response line.
        send(&mut writer, "\"Metrics\"");
        let response = read_response(&mut reader);
        match serde_json::from_str::<plankton_service::Response>(&response) {
            Ok(plankton_service::Response::MetricsText { text }) => print!("{text}"),
            Ok(other) => {
                eprintln!("planktonctl: unexpected response: {other:?}");
                exit(1);
            }
            Err(e) => {
                eprintln!("planktonctl: bad response line: {e}");
                exit(1);
            }
        }
        return;
    }

    if pipeline {
        // One batch, full duplex: a reader thread prints responses while the
        // batch is still being written, so a large batch can never deadlock
        // with both sides blocked on full socket buffers. The daemon
        // processes lines in order and writes one response per request, so
        // reading N lines back cannot desync.
        if requests.is_empty() {
            let stdin = std::io::stdin();
            for line in stdin.lock().lines() {
                let line = line.expect("read stdin");
                if line.trim().is_empty() {
                    continue;
                }
                requests.push(line);
            }
        }
        let expected = requests.len();
        std::thread::scope(|scope| {
            let printer = scope.spawn(move || {
                for _ in 0..expected {
                    receive(&mut reader);
                }
            });
            for request in &requests {
                send(&mut writer, request);
            }
            printer.join().expect("read responses");
        });
    } else if requests.is_empty() {
        // Streaming lockstep: each stdin line is sent — and its response
        // printed — immediately, so interactive drivers and `tail -f`-style
        // pipes see responses as they go, not at EOF.
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let line = line.expect("read stdin");
            if line.trim().is_empty() {
                continue;
            }
            send_with_retry(&mut writer, &mut reader, &line);
        }
    } else {
        for request in &requests {
            send_with_retry(&mut writer, &mut reader, request);
        }
    }
}

#[cfg(not(unix))]
fn main() {
    eprintln!("planktonctl requires a Unix platform");
    exit(2);
}
