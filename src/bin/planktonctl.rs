//! `planktonctl` — client for a running `planktond --socket` daemon.
//!
//! Each positional argument is one JSON request line; with no arguments,
//! request lines are read from stdin. Responses are printed one per line.
//!
//! ```text
//! planktonctl --socket /tmp/p.sock '"Stats"'
//! planktonctl --socket /tmp/p.sock \
//!   '{"ApplyDelta": {"delta": {"LinkDown": {"link": 3}}}}' \
//!   '{"Verify": {"policy": "LoopFreedom"}}'
//! ```

use std::io::{BufRead, BufReader, Write};
use std::process::exit;

fn usage() -> ! {
    eprintln!("usage:\n  planktonctl --socket <path> [REQUEST_JSON]...\n\nWith no REQUEST_JSON arguments, request lines are read from stdin.");
    exit(2);
}

#[cfg(unix)]
fn main() {
    let mut socket: Option<String> = None;
    let mut requests: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => socket = Some(args.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            // Blank requests get no response line from the daemon; sending
            // one would deadlock the lockstep read below.
            _ if arg.trim().is_empty() => {}
            _ => requests.push(arg),
        }
    }
    let Some(path) = socket else { usage() };
    let stream = std::os::unix::net::UnixStream::connect(&path).unwrap_or_else(|e| {
        eprintln!("cannot connect to {path}: {e}");
        exit(1);
    });
    let mut reader = BufReader::new(stream.try_clone().expect("clone socket"));
    let mut writer = stream;

    let mut send = |line: &str| {
        writer
            .write_all(format!("{}\n", line.trim()).as_bytes())
            .expect("write request");
        let mut response = String::new();
        reader.read_line(&mut response).expect("read response");
        print!("{response}");
    };

    if requests.is_empty() {
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let line = line.expect("read stdin");
            if line.trim().is_empty() {
                continue;
            }
            send(&line);
        }
    } else {
        for request in &requests {
            send(request);
        }
    }
}

#[cfg(not(unix))]
fn main() {
    eprintln!("planktonctl requires a Unix platform");
    exit(2);
}
