//! `planktonctl` — client for a running `planktond --socket` daemon.
//!
//! Each positional argument is one JSON request line; with no arguments,
//! request lines are read from stdin. Responses are printed one per line.
//! Connection attempts retry with a short backoff until `--timeout` (the
//! daemon may still be binding its socket), and `--pipeline` writes every
//! request before reading any response — one round trip for a whole batch
//! against the concurrent daemon.
//!
//! ```text
//! planktonctl --socket /tmp/p.sock '"Stats"'
//! planktonctl --socket /tmp/p.sock --timeout 10 --pipeline \
//!   '{"ApplyDelta": {"delta": {"LinkDown": {"link": 3}}}}' \
//!   '{"Verify": {"policy": "LoopFreedom"}}' \
//!   '"Persist"'
//! planktonctl --socket /tmp/p.sock metrics   # Prometheus text exposition
//! ```
//!
//! The `metrics` subcommand sends a `Metrics` request and prints the
//! daemon's metrics registry as Prometheus text exposition (unwrapped from
//! the JSON response), ready to pipe to a file a scraper reads.
//!
//! The `top` subcommand is a live view over the daemon's per-task cost
//! attribution: it polls `Top` and `Stats` every `--interval` seconds and
//! renders the hottest (PEC × failure-set) tasks plus poll-over-poll deltas
//! (tasks/sec, cache hit rate). `--once` prints a single sample and exits —
//! the scriptable form. The `dump` subcommand fetches the in-memory flight
//! recorder (`--trace <id>` filters to one request's causal chain, `--last
//! <n>` truncates) and prints each retained event as its JSONL rendering —
//! post-mortem debugging with no log file configured ahead of time.

use std::process::exit;

fn usage() -> ! {
    eprintln!("usage:\n  planktonctl --socket <path> [--timeout <secs>] [--pipeline] [REQUEST_JSON]...\n  planktonctl --socket <path> [--timeout <secs>] metrics\n  planktonctl --socket <path> [--timeout <secs>] top [--once] [--interval <secs>] [-k <N>]\n  planktonctl --socket <path> [--timeout <secs>] dump [--trace <id>] [--last <N>]\n\nWith no REQUEST_JSON arguments, request lines are read from stdin.\n--timeout bounds the connect retry loop, each socket read, and the\noverloaded-retry loop (default 5s; 0 disables the read timeout);\n--pipeline sends every request before reading the responses. When the\ndaemon sheds a request (`overloaded`, from planktond --max-inflight),\nnon-pipelined requests are retried with the daemon's retry_after_ms\nhint until --timeout elapses. The `metrics` subcommand prints the\ndaemon's metrics as Prometheus text exposition. `top` renders the\nhottest (PEC x failure-set) tasks live (default every 2s; --once for a\nsingle sample); `dump` prints the daemon's in-memory flight recorder as\nJSON lines (--trace filters to one request's causal chain).");
    exit(2);
}

/// `1234567` µs → `"1.23s"`; keeps the table columns narrow.
fn fmt_micros(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.1}ms", us as f64 / 1e3)
    } else {
        format!("{us}us")
    }
}

#[cfg(unix)]
fn main() {
    use std::io::{BufRead, BufReader, Write};

    let mut socket: Option<String> = None;
    let mut timeout_secs: f64 = 5.0;
    let mut pipeline = false;
    let mut metrics = false;
    let mut top = false;
    let mut dump = false;
    let mut once = false;
    let mut interval_secs: f64 = 2.0;
    let mut top_k: usize = 10;
    let mut dump_trace: Option<u64> = None;
    let mut dump_last: Option<usize> = None;
    let mut requests: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => socket = Some(args.next().unwrap_or_else(|| usage())),
            "--timeout" => {
                timeout_secs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--pipeline" => pipeline = true,
            "metrics" => metrics = true,
            "top" => top = true,
            "dump" => dump = true,
            "--once" => once = true,
            "--interval" => {
                interval_secs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "-k" => {
                top_k = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--trace" => {
                dump_trace = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--last" => {
                dump_last = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--help" | "-h" => usage(),
            // Blank requests get no response line from the daemon; sending
            // one would desync the request/response accounting below.
            _ if arg.trim().is_empty() => {}
            _ => requests.push(arg),
        }
    }
    let subcommands = usize::from(metrics) + usize::from(top) + usize::from(dump);
    if subcommands > 1 || (subcommands == 1 && (pipeline || !requests.is_empty())) {
        usage();
    }
    if (once || interval_secs != 2.0 || top_k != 10) && !top {
        usage();
    }
    if (dump_trace.is_some() || dump_last.is_some()) && !dump {
        usage();
    }
    let Some(path) = socket else { usage() };
    let timeout = std::time::Duration::from_secs_f64(timeout_secs.max(0.0));
    let stream = plankton_service::connect_with_retry(path.as_ref(), timeout).unwrap_or_else(|e| {
        eprintln!("cannot connect to {path}: {e}");
        exit(1);
    });
    // `--timeout` also bounds each socket read: a daemon that accepted the
    // connection but stopped responding (wedged, SIGSTOPped, mid-crash)
    // fails this client loudly instead of hanging it forever. 0 disables.
    if !timeout.is_zero() {
        stream
            .set_read_timeout(Some(timeout))
            .expect("set read timeout");
    }
    let mut reader = BufReader::new(stream.try_clone().expect("clone socket"));
    let mut writer = stream;

    let send = |writer: &mut std::os::unix::net::UnixStream, line: &str| {
        writer
            .write_all(format!("{}\n", line.trim()).as_bytes())
            .expect("write request");
    };
    let read_response = |reader: &mut BufReader<std::os::unix::net::UnixStream>| -> String {
        let mut response = String::new();
        match reader.read_line(&mut response) {
            // EOF before the response: the daemon died or dropped the
            // connection mid-session. Scripts key on the exit code — a
            // truncated batch must not look like success.
            Ok(0) => {
                eprintln!("planktonctl: connection closed by daemon before a response");
                exit(1);
            }
            Ok(_) => response,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                eprintln!("planktonctl: timed out after {timeout_secs}s waiting for a response");
                exit(1);
            }
            Err(e) => {
                eprintln!("planktonctl: read error: {e}");
                exit(1);
            }
        }
    };
    let receive = |reader: &mut BufReader<std::os::unix::net::UnixStream>| {
        print!("{}", read_response(reader));
    };

    // v2 handshake, once per connection: the daemon advertises its protocol
    // version and feature set. A major version this client does not know
    // means the wire format may have changed incompatibly — refuse rather
    // than mis-parse responses. An `Error` reply means a pre-handshake (v1)
    // daemon; v1 requests still work, so warn and continue.
    send(&mut writer, "\"Hello\"");
    let hello_response = read_response(&mut reader);
    match serde_json::from_str::<plankton_service::Response>(&hello_response) {
        Ok(plankton_service::Response::Welcome { proto_version, .. }) => {
            let major = proto_version
                .split('.')
                .next()
                .and_then(|m| m.parse::<u64>().ok());
            if major != Some(plankton_service::PROTO_VERSION_MAJOR) {
                eprintln!(
                    "planktonctl: daemon speaks protocol {proto_version}, this client speaks {} — refusing",
                    plankton_service::PROTO_VERSION
                );
                exit(1);
            }
        }
        Ok(plankton_service::Response::Error { .. }) => {
            eprintln!(
                "planktonctl: daemon predates the Hello handshake; continuing with v1 requests"
            );
        }
        Ok(other) => {
            eprintln!("planktonctl: unexpected handshake response: {other:?}");
            exit(1);
        }
        Err(e) => {
            eprintln!("planktonctl: bad handshake response: {e}");
            exit(1);
        }
    }
    // Lockstep paths retry a shed request (`overloaded` from planktond
    // --max-inflight) with the daemon's own retry hint, bounded by
    // --timeout — transient overload looks like a slow response, not a
    // failure. Pipelined batches are not retried: responses interleave and
    // a mid-batch re-send would desync request/response accounting.
    let send_with_retry = |writer: &mut std::os::unix::net::UnixStream,
                           reader: &mut BufReader<std::os::unix::net::UnixStream>,
                           line: &str| {
        let start = std::time::Instant::now();
        loop {
            send(writer, line);
            let response = read_response(reader);
            if let Ok(plankton_service::Response::Error {
                kind,
                retry_after_ms,
                ..
            }) = serde_json::from_str::<plankton_service::Response>(&response)
            {
                if kind == "overloaded" && start.elapsed() < timeout {
                    let wait = retry_after_ms.unwrap_or(100);
                    eprintln!("planktonctl: daemon overloaded, retrying in {wait}ms");
                    std::thread::sleep(std::time::Duration::from_millis(wait));
                    continue;
                }
            }
            print!("{response}");
            return;
        }
    };

    if metrics {
        // One request, one response — but the payload is a whole Prometheus
        // text page, so unwrap it from the JSON envelope instead of echoing
        // the response line.
        send(&mut writer, "\"Metrics\"");
        let response = read_response(&mut reader);
        match serde_json::from_str::<plankton_service::Response>(&response) {
            Ok(plankton_service::Response::MetricsText { text }) => print!("{text}"),
            Ok(other) => {
                eprintln!("planktonctl: unexpected response: {other:?}");
                exit(1);
            }
            Err(e) => {
                eprintln!("planktonctl: bad response line: {e}");
                exit(1);
            }
        }
        return;
    }

    if dump {
        // One-shot post-mortem fetch: print each retained event's JSONL
        // rendering (the same line a --log-json sink would have written), a
        // summary on stderr so stdout stays machine-parsable.
        let trace = dump_trace.map_or("null".to_string(), |t| t.to_string());
        let last = dump_last.map_or("null".to_string(), |n| n.to_string());
        send(
            &mut writer,
            &format!("{{\"Dump\":{{\"trace_id\":{trace},\"last\":{last}}}}}"),
        );
        let response = read_response(&mut reader);
        match serde_json::from_str::<plankton_service::Response>(&response) {
            Ok(plankton_service::Response::Dump {
                events,
                total_recorded,
                dropped,
            }) => {
                for event in &events {
                    println!("{}", event.json);
                }
                eprintln!(
                    "planktonctl: {} event(s) ({total_recorded} recorded, {dropped} overwritten)",
                    events.len()
                );
            }
            Ok(plankton_service::Response::Error { message, .. }) => {
                eprintln!("planktonctl: dump failed: {message}");
                exit(1);
            }
            Ok(other) => {
                eprintln!("planktonctl: unexpected response: {other:?}");
                exit(1);
            }
            Err(e) => {
                eprintln!("planktonctl: bad response line: {e}");
                exit(1);
            }
        }
        return;
    }

    if top {
        // Live hottest-tasks view: poll Top + Stats, render the attribution
        // table plus poll-over-poll rates. --once prints one sample (no
        // screen clearing) for scripts and CI.
        let interval = std::time::Duration::from_secs_f64(interval_secs.max(0.1));
        let mut prev: Option<(std::time::Instant, u64, u64, u64)> = None; // (at, runs, hits, misses)
        loop {
            send(&mut writer, &format!("{{\"Top\":{{\"k\":{top_k}}}}}"));
            let top_response = read_response(&mut reader);
            send(&mut writer, "\"Stats\"");
            let stats_response = read_response(&mut reader);
            let (rows, total_micros, tasks_tracked) =
                match serde_json::from_str::<plankton_service::Response>(&top_response) {
                    Ok(plankton_service::Response::Top {
                        rows,
                        total_micros,
                        tasks_tracked,
                    }) => (rows, total_micros, tasks_tracked),
                    Ok(other) => {
                        eprintln!("planktonctl: unexpected response: {other:?}");
                        exit(1);
                    }
                    Err(e) => {
                        eprintln!("planktonctl: bad response line: {e}");
                        exit(1);
                    }
                };
            let stats = match serde_json::from_str::<plankton_service::Response>(&stats_response) {
                Ok(plankton_service::Response::Stats(stats)) => stats,
                Ok(other) => {
                    eprintln!("planktonctl: unexpected response: {other:?}");
                    exit(1);
                }
                Err(e) => {
                    eprintln!("planktonctl: bad response line: {e}");
                    exit(1);
                }
            };

            let now = std::time::Instant::now();
            let runs: u64 = rows.iter().map(|r| r.runs).sum();
            let mut rates = String::new();
            if let Some((at, prev_runs, prev_hits, prev_misses)) = prev {
                let dt = now.duration_since(at).as_secs_f64().max(1e-9);
                let tasks_per_sec = runs.saturating_sub(prev_runs) as f64 / dt;
                let d_hits = stats.cache_hits.saturating_sub(prev_hits);
                let d_misses = stats.cache_misses.saturating_sub(prev_misses);
                let d_lookups = d_hits + d_misses;
                if d_lookups > 0 {
                    rates = format!(
                        "  +{tasks_per_sec:.1} tasks/s  {:.0}% hit (interval)",
                        100.0 * d_hits as f64 / d_lookups as f64
                    );
                } else {
                    rates = format!("  +{tasks_per_sec:.1} tasks/s");
                }
            }
            prev = Some((now, runs, stats.cache_hits, stats.cache_misses));

            if !once {
                // Clear + home, like top(1): each poll repaints in place.
                print!("\x1b[H\x1b[2J");
            }
            let lookups = stats.cache_hits + stats.cache_misses;
            let lifetime_hit = if lookups > 0 {
                format!("{:.0}%", 100.0 * stats.cache_hits as f64 / lookups as f64)
            } else {
                "-".to_string()
            };
            println!(
                "plankton top — {tasks_tracked} task(s) tracked, {} total, hit rate {lifetime_hit}{rates}",
                fmt_micros(total_micros)
            );
            println!(
                "{:>6}  {:<24} {:>6} {:>9} {:>9} {:>10} {:>6} {:>6}",
                "PEC", "FAILURES", "RUNS", "TOTAL", "MAX", "STATES", "HITS", "PANIC"
            );
            for row in &rows {
                let mut failures = row.failures.clone();
                if failures.len() > 24 {
                    failures.truncate(23);
                    failures.push('…');
                }
                println!(
                    "{:>6}  {:<24} {:>6} {:>9} {:>9} {:>10} {:>6} {:>6}",
                    row.pec,
                    failures,
                    row.runs,
                    fmt_micros(row.total_micros),
                    fmt_micros(row.max_micros),
                    row.states,
                    row.cache_hits,
                    row.panics
                );
            }
            if rows.is_empty() {
                println!("(no tasks recorded yet — run a Verify)");
            }
            if once {
                return;
            }
            let _ = std::io::stdout().flush();
            std::thread::sleep(interval);
        }
    }

    if pipeline {
        // One batch, full duplex: a reader thread prints responses while the
        // batch is still being written, so a large batch can never deadlock
        // with both sides blocked on full socket buffers. The daemon
        // processes lines in order and writes one response per request, so
        // reading N lines back cannot desync.
        if requests.is_empty() {
            let stdin = std::io::stdin();
            for line in stdin.lock().lines() {
                let line = line.expect("read stdin");
                if line.trim().is_empty() {
                    continue;
                }
                requests.push(line);
            }
        }
        let expected = requests.len();
        std::thread::scope(|scope| {
            let printer = scope.spawn(move || {
                for _ in 0..expected {
                    receive(&mut reader);
                }
            });
            for request in &requests {
                send(&mut writer, request);
            }
            printer.join().expect("read responses");
        });
    } else if requests.is_empty() {
        // Streaming lockstep: each stdin line is sent — and its response
        // printed — immediately, so interactive drivers and `tail -f`-style
        // pipes see responses as they go, not at EOF.
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let line = line.expect("read stdin");
            if line.trim().is_empty() {
                continue;
            }
            send_with_retry(&mut writer, &mut reader, &line);
        }
    } else {
        for request in &requests {
            send_with_retry(&mut writer, &mut reader, request);
        }
    }
}

#[cfg(not(unix))]
fn main() {
    eprintln!("planktonctl requires a Unix platform");
    exit(2);
}
