//! `planktond` — the persistent incremental verification daemon.
//!
//! Accepts a network once (from a config file, a built-in scenario, or a
//! `Load` request), then serves a stream of newline-delimited JSON requests:
//! `Verify`, `ApplyDelta`, `ApplyDeltas`, `Query`, `Stats`, `Persist`,
//! `Shutdown`. Re-verification after a delta re-explores only the PECs the
//! delta dirtied; everything else is served from the content-addressed
//! result cache. With `--socket` the daemon serves concurrent client
//! connections (readiness-multiplexed over one shared session: unbounded
//! connections, `--threads` workers); with `--cache-dir` the
//! result cache is persisted on shutdown (and on `Persist`) and
//! warm-started on the next run, so a restarted daemon re-verifies an
//! unchanged network entirely from cache.
//!
//! ```text
//! planktond --scenario fat-tree:4                # stdio, demo network
//! planktond --config net.json --socket /tmp/p.sock --threads 8
//! planktond --scenario ring:6 --cache-dir /var/lib/plankton
//! echo '"Stats"' | planktond --scenario ring:6
//! ```

use plankton::config::scenarios::{fat_tree_ospf, isp_ibgp_over_ospf, ring_ospf, CoreStaticRoutes};
use plankton::net::generators::as_topo::AsTopologySpec;
use plankton::prelude::Network;
use plankton_service::{ServeOptions, ServiceSession};
use std::io::{self, Write};
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage:\n  planktond [--config <file.json> | --scenario <ring:N|fat-tree:K|ibgp:ASN>]\n            [--socket <path>] [--threads <N>] [--cache-dir <dir>]\n            [--max-inflight <N>] [--slow-task-ms <N>]\n            [--max-lag-deltas <N>] [--max-lag-ms <N>] [--max-pending-deltas <N>]\n            [--recorder-capacity <N>]\n            [--log-json <file.jsonl>] [--log-level <error|warn|info|debug|trace>]\n\nWithout --socket the daemon serves newline-delimited JSON requests on\nstdin/stdout; with it, on a Unix socket. Connections are readiness-\nmultiplexed: the count is unbounded, --threads sizes the worker pool\npumping ready connections (default 4). With --cache-dir the result cache\nis persisted on shutdown and warm-started on the next run. Without\n--config/--scenario, start with a `Load` request.\n\n--max-inflight bounds concurrently running Verify requests: excess\nverifies get a structured `overloaded` error with a retry_after_ms hint\ninstead of queuing (planktonctl retries these automatically).\n\nStreaming deltas (`ApplyDeltas {{ack: \"enqueued\"}}`) queue, coalesce, and\nare verified at bounded lag by a background drain: --max-lag-deltas (64)\nand --max-lag-ms (50) bound how many deltas / how long a delta may wait\nbefore the batch is applied; --max-pending-deltas (4096) is the queue\nhigh-water mark past which new deltas are shed with `overloaded`.\n\n--slow-task-ms sets the slow_task warn threshold (default 250).\n--recorder-capacity sizes the in-memory flight recorder serving `Dump`\nrequests (default 2048 events; 0 disables it).\n\n--log-json appends every trace event as one JSON line to the given file;\n--log-level pretty-prints events at or above the level to stderr.\n\nFault injection for chaos testing: set PLANKTON_FAILPOINTS, e.g.\nPLANKTON_FAILPOINTS='task=panic*1,cache_save=io_err' (see README)."
    );
    exit(2);
}

fn builtin_scenario(spec: &str) -> Option<Network> {
    let (kind, param) = spec.split_once(':')?;
    match kind {
        "ring" => Some(ring_ospf(param.parse().ok()?).network),
        "fat-tree" => {
            Some(fat_tree_ospf(param.parse().ok()?, CoreStaticRoutes::MatchingOspf).network)
        }
        "ibgp" => Some(isp_ibgp_over_ospf(&AsTopologySpec::paper_as(param.parse().ok()?)).network),
        _ => None,
    }
}

fn main() {
    // Arm failpoints first: faults configured via PLANKTON_FAILPOINTS must
    // cover everything after this line, including network load and cache
    // warm-start. A malformed spec warns and stays disarmed — fault
    // injection config must never take down a production daemon.
    let failpoints = plankton_faultinject::init_from_env();
    if failpoints > 0 {
        eprintln!("planktond: {failpoints} failpoint(s) armed via PLANKTON_FAILPOINTS");
    }

    let mut config: Option<String> = None;
    let mut scenario: Option<String> = None;
    let mut socket: Option<String> = None;
    let mut cache_dir: Option<String> = None;
    let mut log_json: Option<String> = None;
    let mut log_level: Option<String> = None;
    let mut tuning = plankton::core::Tuning::default();
    let mut recorder_capacity: usize = plankton_telemetry::recorder::DEFAULT_CAPACITY;
    let mut threads: usize = ServeOptions::default().workers;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--config" => config = Some(value()),
            "--scenario" => scenario = Some(value()),
            "--socket" => socket = Some(value()),
            "--cache-dir" => cache_dir = Some(value()),
            "--log-json" => log_json = Some(value()),
            "--log-level" => log_level = Some(value()),
            "--threads" => {
                threads = value().parse().unwrap_or_else(|_| usage());
                if threads == 0 {
                    usage();
                }
            }
            "--max-inflight" => {
                tuning.max_inflight = Some(value().parse().unwrap_or_else(|_| usage()));
            }
            "--slow-task-ms" => {
                tuning.slow_task_ms = Some(value().parse().unwrap_or_else(|_| usage()));
            }
            "--max-lag-deltas" => {
                tuning.max_lag_deltas = Some(value().parse().unwrap_or_else(|_| usage()));
            }
            "--max-lag-ms" => {
                tuning.max_lag_ms = Some(value().parse().unwrap_or_else(|_| usage()));
            }
            "--max-pending-deltas" => {
                tuning.max_pending_deltas = Some(value().parse().unwrap_or_else(|_| usage()));
            }
            "--recorder-capacity" => {
                recorder_capacity = value().parse().unwrap_or_else(|_| usage());
            }
            _ => usage(),
        }
    }

    // The always-on flight recorder: post-mortem `Dump` works even when no
    // JSONL sink was configured ahead of the failure.
    plankton_telemetry::recorder::install_global(recorder_capacity);

    if let Some(path) = &log_json {
        if let Err(e) = plankton_telemetry::trace::init_json_file(path.as_ref()) {
            eprintln!("cannot open log file {path}: {e}");
            exit(1);
        }
    }
    if let Some(spec) = &log_level {
        let Some(level) = plankton_telemetry::Level::parse(spec) else {
            eprintln!("unknown log level {spec:?} (error, warn, info, debug, trace)");
            exit(2);
        };
        plankton_telemetry::trace::init_stderr(level);
    }

    let mut session = ServiceSession::new().with_tuning(tuning);
    if let Some(dir) = &cache_dir {
        session = session.with_cache_dir(dir);
    }
    if let Some(path) = &config {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            exit(1);
        });
        let network = Network::from_json(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse {path}: {e}");
            exit(1);
        });
        session.load(network);
        eprintln!("planktond: loaded {path}");
    } else if let Some(spec) = &scenario {
        let Some(network) = builtin_scenario(spec) else {
            eprintln!("unknown scenario {spec:?} (ring:N, fat-tree:K, ibgp:ASN)");
            exit(2);
        };
        session.load(network);
        eprintln!("planktond: loaded built-in scenario {spec}");
    }

    // The background drain enforcing the bounded-lag contract for
    // `ApplyDeltas {ack: "enqueued"}`; stopping it (below) drains whatever
    // is still queued before the daemon persists and exits.
    let session = std::sync::Arc::new(session);
    let streaming = session.start_streaming();

    match socket {
        Some(path) => {
            #[cfg(unix)]
            {
                eprintln!("planktond: listening on {path} ({threads} worker threads)");
                let options = ServeOptions { workers: threads };
                if let Err(e) = plankton_service::serve_unix(&session, path.as_ref(), &options) {
                    eprintln!("planktond: socket error: {e}");
                    exit(1);
                }
            }
            #[cfg(not(unix))]
            {
                let _ = path;
                eprintln!("planktond: --socket requires a Unix platform");
                exit(2);
            }
        }
        None => {
            let stdin = io::stdin();
            let mut stdout = io::stdout();
            if let Err(e) = plankton_service::serve(&session, stdin.lock(), &mut stdout) {
                eprintln!("planktond: I/O error: {e}");
                exit(1);
            }
            let _ = stdout.flush();
        }
    }

    // Final drain: enqueued-but-unverified deltas are applied before the
    // cache is persisted, so nothing acknowledged is lost at shutdown.
    streaming.stop();

    // Persist the cache at exit (shutdown request or end of stream) so the
    // next daemon warm-starts. An explicit `Persist` request does the same
    // mid-flight.
    if cache_dir.is_some() && session.verifier().is_some() {
        match session.persist() {
            Ok(entries) => eprintln!("planktond: persisted {entries} cache entries"),
            Err(e) => eprintln!("planktond: cache persist failed: {e}"),
        }
    }

    // The last event of a graceful exit, then fsync the JSONL sink: the log
    // must end with `shutdown` on disk even if the machine dies right after.
    plankton_telemetry::trace::event(
        plankton_telemetry::Level::Info,
        "shutdown",
        &[plankton_telemetry::Field::u64(
            "parse_errors",
            session.parse_errors(),
        )],
    );
    plankton_telemetry::trace::sync_sinks();

    // Every malformed request got an Error reply inline, but a scripted
    // pipeline reads the exit code: surface that something in the stream
    // never parsed as a request.
    if session.parse_errors() > 0 {
        eprintln!(
            "planktond: {} request line(s) failed to parse",
            session.parse_errors()
        );
        exit(1);
    }
}
